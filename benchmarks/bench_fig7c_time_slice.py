"""Fig. 7(c) — impact of the time-slice length on CCT.

Paper: growing the slice from O(10 ms) to O(1 s) pushes the CCT CDF right
and raises average CCT — decisions go stale and completions are observed
late.  Swallow defaults to 0.01 s.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_cdf, render_table, run_policy
from repro.core.metrics import cct_values
from repro.units import mbps
from workloads import coflow_trace

SLICES = [0.01, 0.1, 1.0]


def run_all():
    workload = coflow_trace(seed=77)
    out = {}
    for s in SLICES:
        setup = ExperimentSetup(num_ports=16, bandwidth=mbps(100), slice_len=s)
        res = run_policy("fvdf", workload, setup)
        out[s] = cct_values(res)
    return out


def test_fig7c_time_slice(once, report, figure):
    out = once(run_all)
    from repro.analysis import cdf_chart

    figure("fig7c_time_slice", cdf_chart(
        {f"slice {s * 1e3:.0f} ms": list(v) for s, v in out.items()},
        title="Fig. 7(c) — CDF of CCT vs slice length", xlabel="CCT (s)",
    ))
    avg = {s: float(v.mean()) for s, v in out.items()}
    rows = [[f"{s * 1e3:.0f} ms", avg[s], float(np.median(out[s]))] for s in SLICES]
    text = render_table(
        ["slice length", "avg CCT (s)", "median CCT (s)"], rows,
        title="Fig. 7(c) — CCT vs time-slice length",
    )
    points = np.quantile(out[SLICES[0]], [0.25, 0.5, 0.75, 1.0])
    for s in SLICES:
        text += "\n\n" + render_cdf(out[s], points=points, label=f"CDF, slice {s} s")
    report("fig7c_time_slice", text)
    # Average CCT grows monotonically with slice length.
    assert avg[0.01] <= avg[0.1] <= avg[1.0]
    # O(1 s) slices hurt substantially vs O(10 ms) (paper's contrast).
    assert avg[1.0] > avg[0.01] * 1.15
