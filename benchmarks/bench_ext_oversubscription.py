"""Extension — compression gains vs fabric oversubscription.

The paper evaluates on the ideal big switch; production fabrics are
oversubscribed at the rack uplinks, making bandwidth even scarcer — the
exact regime where Eq. 3 favours compression.  This bench sweeps the
oversubscription ratio on a two-tier fabric and shows FVDF's edge over
SEBF *growing* with oversubscription, strengthening the paper's thesis on
realistic topologies.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.core.simulator import SliceSimulator
from repro.fabric import TwoTierFabric
from repro.schedulers import make_scheduler
from repro.traces.distributions import LogNormalSizes
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.units import KB, MB, gbps

NUM_RACKS = 4
HOSTS_PER_RACK = 4
HOST_BW = gbps(1)
RATIOS = [1, 4, 8]  # uplink oversubscription k:1


def workload():
    cfg = WorkloadConfig(
        num_coflows=30,
        num_ports=NUM_RACKS * HOSTS_PER_RACK,
        size_dist=LogNormalSizes(median=16 * MB, sigma=1.2, lo=256 * KB, hi=256 * MB),
        width=(1, 6),
        arrival_rate=2.0,
    )
    return generate_workload(cfg, np.random.default_rng(99))


def run_one(ratio: int, policy: str, coflows):
    fabric = TwoTierFabric(
        NUM_RACKS, HOSTS_PER_RACK, HOST_BW,
        uplink_bandwidth=HOSTS_PER_RACK * HOST_BW / ratio,
    )
    sim = SliceSimulator(fabric, make_scheduler(policy), slice_len=0.01)
    sim.submit_many(coflows)
    return sim.run()


def run_all():
    coflows = workload()
    table = {}
    for ratio in RATIOS:
        sebf = run_one(ratio, "sebf", coflows)
        fvdf = run_one(ratio, "fvdf", coflows)
        table[ratio] = {
            "sebf_cct": sebf.avg_cct,
            "fvdf_cct": fvdf.avg_cct,
            "speedup": sebf.avg_cct / fvdf.avg_cct,
            "traffic_reduction": fvdf.traffic_reduction,
        }
    return table


def test_ext_oversubscription(once, report):
    table = once(run_all)
    rows = [
        [f"{k}:1", d["sebf_cct"], d["fvdf_cct"], d["speedup"],
         f"{d['traffic_reduction'] * 100:.1f}%"]
        for k, d in table.items()
    ]
    report(
        "ext_oversubscription",
        render_table(
            ["oversubscription", "SEBF CCT (s)", "FVDF CCT (s)",
             "speedup", "traffic saved"],
            rows,
            title="Extension — FVDF vs SEBF on an oversubscribed two-tier fabric",
        ),
    )
    # Oversubscription hurts everyone...
    assert table[8]["sebf_cct"] > table[1]["sebf_cct"]
    # ...but compression recovers more of it: FVDF's edge grows with k.
    assert table[8]["speedup"] > table[1]["speedup"]
    assert table[8]["speedup"] > 1.1
    # More traffic compresses as effective bandwidth shrinks.
    assert table[8]["traffic_reduction"] >= table[1]["traffic_reduction"] - 0.02