"""Ablation — FVDF rate-allocation policy: minimal (paper) vs greedy vs MADD.

The paper allocates each coflow the *minimum* rates finishing it within
Γ_C (line 29) and leaves the rest to others; "greedy" gives the head
coflow everything; "madd" is Varys' allocation.  All three must complete
the same workload; the ablation quantifies how much the choice matters.
"""

import pytest

from repro.analysis import ExperimentSetup, render_table, run_many
from repro.core.fvdf import FVDFConfig, FVDFScheduler
from repro.units import mbps
from workloads import coflow_trace

POLICIES = {
    "minimal": FVDFConfig(rate_policy="minimal"),
    "greedy": FVDFConfig(rate_policy="greedy"),
    "madd": FVDFConfig(rate_policy="madd"),
}
SETUP = ExperimentSetup(num_ports=16, bandwidth=mbps(100), slice_len=0.01)


def run_all():
    workload = coflow_trace(seed=14)
    schedulers = [
        FVDFScheduler(cfg, name=f"fvdf-{label}") for label, cfg in POLICIES.items()
    ]
    return run_many(schedulers, workload, SETUP)


def test_ablation_rate_policy(once, report):
    results = once(run_all)
    rows = [
        [name, res.avg_cct, res.avg_fct, res.makespan,
         f"{res.traffic_reduction * 100:.1f}%"]
        for name, res in results.items()
    ]
    report(
        "ablation_rate_policy",
        render_table(
            ["rate policy", "avg CCT (s)", "avg FCT (s)", "makespan (s)",
             "traffic saved"],
            rows,
            title="Ablation — FVDF rate-allocation policy",
        ),
    )
    ccts = {n: r.avg_cct for n, r in results.items()}
    # All complete the full workload with compression engaged.
    for name, res in results.items():
        assert len(res.coflow_results) == 40, name
        assert res.traffic_reduction > 0.2, name
    # The three policies land in the same regime (work conservation makes
    # them differ by allocation detail, not by orders of magnitude).
    assert max(ccts.values()) / min(ccts.values()) < 1.5