"""Hot-path scaling benchmark — the tracked ``BENCH_hotpath.json`` grid.

Runs the flows × coflows × ports scaling grid from
:mod:`repro.analysis.perfbench` against both the vectorized FVDF engine
and the pinned pre-vectorization reference, appends the timings to the
``BENCH_hotpath.json`` trajectory at the repo root, and asserts the
tracked speedup ratio on the large case.

Run directly (appends an entry and prints the summary)::

    PYTHONPATH=src python benchmarks/bench_hotpath_scale.py [--label tag]

or via the CLI wrapper / make target::

    python -m repro bench --check
    make bench-hotpath

Under pytest the grid is marked ``slow`` — the full run takes a couple
of minutes because the reference baseline is, by design, slow.
"""

import argparse
import json
import sys

import pytest

from repro.analysis import perfbench


def _check(entry):
    speedup = entry.get("speedup")
    assert speedup is not None, "grid has no speedup anchor case"
    assert speedup["ratio"] >= perfbench.MIN_SPEEDUP, (
        f"hot-path speedup regressed: {speedup['ratio']:.2f}x < "
        f"{perfbench.MIN_SPEEDUP:.1f}x on case {speedup['case']!r} "
        f"(before {speedup['before_s']:.2f}s, after {speedup['after_s']:.2f}s)"
    )


@pytest.mark.slow
def test_hotpath_speedup_grid():
    """Vectorized engine is ≥ MIN_SPEEDUP× the scalar reference."""
    entry = perfbench.bench_entry(repeats=2, label="pytest-guard")
    _check(entry)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--label", default="")
    parser.add_argument(
        "--out", default=None,
        help="trajectory file (default: BENCH_hotpath.json at repo root)",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="record the entry without asserting the speedup floor",
    )
    args = parser.parse_args(argv)

    entry = perfbench.bench_entry(repeats=args.repeats, label=args.label)
    path = args.out or perfbench.default_bench_path()
    perfbench.append_entry(path, entry)
    print(json.dumps(entry, indent=2))
    print(f"appended to {path}")
    if not args.no_check:
        _check(entry)
    return 0


if __name__ == "__main__":
    sys.exit(main())
