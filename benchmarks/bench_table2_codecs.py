"""Table II — compression parameters of the five codecs.

Reports the registry (the paper's measured speeds/ratios, which the
scheduler consumes) plus a live measurement of a real stdlib codec on
synthetic shuffle-like data, and asserts the Eq. 3 decision boundary that
drives all of Swallow's behaviour: LZ4 beats a 1 GbE link but not 10 GbE.
"""

import pytest

from repro.analysis import render_table
from repro.compression.calibrate import calibrated_codec
from repro.compression.codecs import TABLE_II
from repro.units import MB, gbps, mbps, rate_to_human


def run():
    rows = []
    for name in ["lz4", "lzo", "snappy", "lzf", "zstd"]:
        c = TABLE_II[name]
        rows.append([
            c.name,
            rate_to_human(c.speed * 8 / 8),
            rate_to_human(c.decompression_speed),
            f"{c.ratio * 100:.2f}%",
            rate_to_human(c.disposal_speed),
        ])
    live = calibrated_codec("zlib", size=2 * int(MB))
    rows.append([
        live.name,
        rate_to_human(live.speed),
        rate_to_human(live.decompression_speed),
        f"{live.ratio * 100:.2f}%",
        rate_to_human(live.disposal_speed),
    ])
    return rows, live


def test_table2_codecs(once, report):
    rows, live = once(run)
    report(
        "table2_codecs",
        render_table(
            ["codec", "compression", "decompression", "ratio",
             "disposal speed R(1-ξ)"],
            rows,
            title="Table II — compression parameters of flows",
        ),
    )
    # Decompression is faster than compression for every codec (the paper's
    # justification for ignoring decompression time).
    for c in TABLE_II.values():
        assert c.decompression_speed > c.speed
    # Eq. 3 boundary: worthwhile at <=1 GbE, not at 10 GbE (for every codec).
    for c in TABLE_II.values():
        assert c.beats_bandwidth(mbps(100))
        assert not c.beats_bandwidth(gbps(10))
    assert TABLE_II["lz4"].beats_bandwidth(gbps(1))
    # The live codec round-trips and produces sane parameters.
    assert 0.02 <= live.ratio <= 0.98
    assert live.speed > 0
