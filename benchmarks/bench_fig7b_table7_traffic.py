"""Table VII / Fig. 7(b) — data traffic with and without Swallow.

Paper: large 2.4 GB → 1,278.6 MB (46.73%), huge 25.7 GB → 12.9 GB
(49.81%), gigantic 2.65 TB → 1.36 TB (48.68%); 48.41% on average.
"""

import numpy as np
import pytest

from repro.analysis import render_table
from repro.cluster import SCALE_TRAFFIC, ClusterConfig, ClusterSimulator, hibench_suite
from repro.schedulers import make_scheduler
from repro.units import bytes_to_human, gbps

PAPER_REDUCTION = {"large": 0.4673, "huge": 0.4981, "gigantic": 0.4868}
SCALES = ["large", "huge", "gigantic"]


def run_scale(scale: str, scheduler: str):
    cfg = ClusterConfig(num_nodes=16, bandwidth=gbps(1), slice_len=0.01)
    sim = ClusterSimulator(cfg, make_scheduler(scheduler))
    sim.submit_jobs(hibench_suite(scale, np.random.default_rng(31), num_jobs=12))
    return sim.run()


def run_all():
    table = {}
    for scale in SCALES:
        with_swallow = run_scale(scale, "fvdf")
        without = run_scale(scale, "sebf")
        table[scale] = {
            "with": with_swallow.shuffle_bytes_sent,
            "without": without.shuffle_bytes_sent,
            "reduction": 1.0 - with_swallow.shuffle_bytes_sent
            / without.shuffle_bytes_sent,
        }
    return table


def test_fig7b_table7_traffic(once, report):
    table = once(run_all)
    rows = [
        [scale, bytes_to_human(d["with"]), bytes_to_human(d["without"]),
         f"{d['reduction'] * 100:.2f}%", f"{PAPER_REDUCTION[scale] * 100:.2f}%"]
        for scale, d in table.items()
    ]
    avg = float(np.mean([d["reduction"] for d in table.values()]))
    rows.append(["average", "-", "-", f"{avg * 100:.2f}%", "48.41%"])
    report(
        "fig7b_table7_traffic",
        render_table(
            ["workload scale", "with Swallow", "without Swallow",
             "reduction (ours)", "reduction (paper)"],
            rows,
            title="Table VII / Fig. 7(b) — data traffic",
        ),
    )
    # The "without" column reproduces Table VII by construction.
    for scale in SCALES:
        assert table[scale]["without"] == pytest.approx(
            SCALE_TRAFFIC[scale], rel=1e-6
        )
    # Reductions land in the paper's band at every scale.
    for scale in SCALES:
        assert table[scale]["reduction"] == pytest.approx(
            PAPER_REDUCTION[scale], abs=0.10
        ), scale
    assert avg == pytest.approx(0.4841, abs=0.08)
