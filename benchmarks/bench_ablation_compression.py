"""Ablation — where do FVDF's gains come from: ordering or compression?

Runs FVDF with and without compression (and SEBF as the ordering-only
yardstick) across bandwidths.  Expected decomposition: at low bandwidth
compression is the dominant term; at 10 Gbps the two FVDF variants
coincide (Eq. 3 disables compression).
"""

import pytest

from repro.analysis import ExperimentSetup, render_table, run_many
from repro.units import gbps, mbps
from workloads import coflow_trace

BANDWIDTHS = [("100 Mbps", mbps(100)), ("1 Gbps", gbps(1)), ("10 Gbps", gbps(10))]
POLICIES = ["sebf", "fvdf-nocompress", "fvdf"]


def run_all():
    workload = coflow_trace(seed=14)
    table = {}
    for label, bw in BANDWIDTHS:
        setup = ExperimentSetup(num_ports=16, bandwidth=bw, slice_len=0.01)
        results = run_many(POLICIES, workload, setup)
        table[label] = {n: r.avg_cct for n, r in results.items()}
    return table


def test_ablation_compression(once, report):
    table = once(run_all)
    rows = [
        [label, d["sebf"], d["fvdf-nocompress"], d["fvdf"],
         d["fvdf-nocompress"] / d["fvdf"]]
        for label, d in table.items()
    ]
    report(
        "ablation_compression",
        render_table(
            ["bandwidth", "SEBF CCT (s)", "FVDF no-compress (s)",
             "FVDF (s)", "compression factor"],
            rows,
            title="Ablation — ordering vs compression contributions to CCT",
        ),
    )
    # Compression contributes substantially at 100 Mbps...
    assert table["100 Mbps"]["fvdf-nocompress"] / table["100 Mbps"]["fvdf"] > 1.15
    # ...and nothing at 10 Gbps (Eq. 3 disables it).
    assert table["10 Gbps"]["fvdf-nocompress"] == pytest.approx(
        table["10 Gbps"]["fvdf"], rel=0.05
    )
    # FVDF-without-compression stays in SEBF's regime (ordering parity).
    for label, _ in BANDWIDTHS:
        assert table[label]["fvdf-nocompress"] < table[label]["sebf"] * 1.3, label