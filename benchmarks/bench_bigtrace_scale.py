"""Trace-scale ingest/retire benchmark — the tracked ``BENCH_bigtrace.json``.

Replays a synthetic Facebook-like trace (≥100k flows across ≥5k coflows,
:mod:`repro.analysis.bigbench`) end to end — ``submit_many`` → ``run`` →
headline metrics — through the current columnar engine and the pinned
pre-columnar baseline (:class:`repro.core.reference.
PreColumnarSliceSimulator`), appends the timings to the
``BENCH_bigtrace.json`` trajectory at the repo root, and asserts the
≥3x end-to-end speedup floor plus bit-identical results.

Run directly (appends an entry and prints the summary)::

    PYTHONPATH=src python benchmarks/bench_bigtrace_scale.py [--label tag]

or via the CLI wrapper / make target::

    python -m repro bench --bigtrace --check
    make bench-bigtrace

``--smoke`` replays a seconds-scale slice of the same shape (used by CI):
it still verifies the two result paths are identical but skips the
speedup floor, which only means anything at full scale.
"""

import argparse
import json
import sys

import pytest

from repro.analysis import bigbench


@pytest.mark.slow
def test_bigtrace_speedup():
    """Columnar engine is ≥ MIN_SPEEDUP× the pre-columnar baseline."""
    entry = bigbench.bench_entry(repeats=2, label="pytest-guard")
    bigbench.check_entry(entry)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument("--label", default="")
    parser.add_argument(
        "--out", default=None,
        help="trajectory file (default: BENCH_bigtrace.json at repo root)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-scale CI case: verify identity, skip the speedup "
             "floor, do not append to the trajectory file",
    )
    parser.add_argument(
        "--no-check", action="store_true",
        help="record the entry without asserting the speedup floor",
    )
    args = parser.parse_args(argv)

    case = bigbench.SMOKE_CASE if args.smoke else bigbench.CASE
    entry = bigbench.bench_entry(
        repeats=args.repeats, label=args.label, case=case
    )
    print(json.dumps(entry, indent=2))
    if not args.smoke:
        path = args.out or bigbench.default_bigbench_path()
        bigbench.append_entry(path, entry, schema=bigbench.SCHEMA)
        print(f"appended to {path}")
    if not args.no_check:
        bigbench.check_entry(entry, smoke=args.smoke)
    return 0


if __name__ == "__main__":
    sys.exit(main())
