"""Table V — job throughput: cumulative completions per time unit.

Paper: jobs of 10 flows each; cumulative completions are reported at the
end of six time units plus MAX/MIN/AVG completion rates.  FVDF and SRTF
complete far more jobs early (they drain small work first) and stay ahead
of FAIR and FIFO throughout; FVDF ends highest.

Scaling note: the paper's time unit is 2000 s on a production-size trace;
we use a 40 s unit on a proportionally smaller trace — the *shape*
(FVDF/SRTF early surge, FAIR/FIFO slow ramp, FVDF highest extremum and
average) is the reproduced claim.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_table
from repro.core.metrics import completion_rates, throughput_windows
from repro.runner import RunSpec, WorkloadSpec, run_specs
from repro.traces.distributions import LogNormalSizes
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.units import KB, MB, mbps

POLICIES = ["fvdf", "fair", "fifo", "srtf"]
WINDOW = 25.0
NUM_WINDOWS = 6
SETUP = ExperimentSetup(num_ports=16, bandwidth=mbps(100), slice_len=0.01)


def jobs_workload():
    """Jobs of exactly 10 flows (the paper's Table V setup), arriving fast
    enough to keep the fabric backlogged for most of the measurement span —
    Table V's regime, where policies differ in *which* jobs drain first."""
    cfg = WorkloadConfig(
        num_coflows=150,
        num_ports=16,
        size_dist=LogNormalSizes(median=6 * MB, sigma=1.2, lo=64 * KB, hi=64 * MB),
        width=10,
        arrival_rate=5.0,
    )
    return generate_workload(cfg, np.random.default_rng(55))


def run_all():
    # Job completion instants come back as the coflow_finish array of the
    # summaries (arrays=True) — no full results cross the runner boundary.
    workload = WorkloadSpec.inline(jobs_workload())
    specs = [
        RunSpec(policy=p, workload=workload, setup=SETUP, key=p, arrays=True)
        for p in POLICIES
    ]
    table = {}
    for out in run_specs(specs):
        name, comps = out.key, list(out.summary.coflow_finish)
        table[name] = {
            "cumulative": throughput_windows(comps, WINDOW, NUM_WINDOWS),
            "rates": completion_rates(comps, WINDOW, NUM_WINDOWS),
        }
    return table


def test_table5_throughput(once, report):
    table = once(run_all)
    rows = []
    for name in POLICIES:
        cum = table[name]["cumulative"]
        mx, mn, avg = table[name]["rates"]
        rows.append([name] + [int(c) for c in cum] + [mx, mn, avg])
    report(
        "table5_throughput",
        render_table(
            ["algorithm"] + [f"unit {i + 1}" for i in range(NUM_WINDOWS)]
            + ["MAX/s", "MIN/s", "AVG/s"],
            rows,
            title=f"Table V — job throughput (time unit = {WINDOW:.0f} s)",
        ),
    )
    cum = {n: table[n]["cumulative"] for n in POLICIES}
    # Early surge: FVDF and SRTF complete more jobs in unit 1 than FIFO/FAIR.
    assert cum["fvdf"][0] > cum["fair"][0]
    assert cum["fvdf"][0] > cum["fifo"][0]
    assert cum["srtf"][0] > cum["fair"][0]
    # FVDF stays ahead of FAIR and FIFO at every unit boundary.
    assert all(cum["fvdf"] >= cum["fair"])
    assert all(cum["fvdf"] >= cum["fifo"])
    # FVDF's unit-1 throughput is the highest of all policies (the paper's
    # point: FVDF drains work early; FAIR/FIFO only catch up by draining
    # their backlog in late bursts).
    assert cum["fvdf"][0] == max(cum[n][0] for n in POLICIES)
