"""Ablation — is the paper right to ignore decompression time?

Section IV-A1: "we omit the time consumption of decompression because the
decompression is much faster than compression."  We account receiver-side
decompression per flow and measure how much it would add to FVDF's FCT —
quantifying the omission instead of assuming it.
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, render_table, run_policy
from repro.units import mbps
from workloads import coflow_trace

CODECS = ["lz4", "snappy", "zstd"]


def run_all():
    workload = coflow_trace(seed=14)
    table = {}
    for codec in CODECS:
        setup = ExperimentSetup(
            num_ports=16, bandwidth=mbps(100), slice_len=0.01, codec=codec
        )
        res = run_policy("fvdf", workload, setup)
        fct = np.asarray([f.fct for f in res.flow_results])
        fct_d = np.asarray([f.fct_with_decompression for f in res.flow_results])
        table[codec] = {
            "avg_fct": float(fct.mean()),
            "avg_fct_decomp": float(fct_d.mean()),
            "overhead": float(fct_d.mean() / fct.mean() - 1.0),
        }
    return table


def test_ablation_decompression(once, report):
    table = once(run_all)
    rows = [
        [codec, d["avg_fct"], d["avg_fct_decomp"], f"{d['overhead'] * 100:.2f}%"]
        for codec, d in table.items()
    ]
    report(
        "ablation_decompression",
        render_table(
            ["codec", "avg FCT (s)", "avg FCT + decompression (s)",
             "overhead"],
            rows,
            title="Ablation — receiver-side decompression overhead",
        ),
    )
    # The paper's omission is justified: decompression adds <5% to FCT for
    # every codec at 100 Mbps.
    for codec, d in table.items():
        assert d["overhead"] < 0.05, codec
        assert d["avg_fct_decomp"] >= d["avg_fct"]