.PHONY: install test lint bench bench-hotpath bench-kernel bench-sweep bench-bigtrace bench-stream reproduce examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

# Config lives in pyproject.toml ([tool.ruff]).  Skips gracefully when
# ruff is not on PATH so `make lint` is safe in minimal containers.
lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests benchmarks; \
	else \
		echo "ruff not installed; skipping lint (pip install ruff)"; \
	fi

bench:
	pytest benchmarks/ --benchmark-only

# Re-run the hot-path scaling grid and append to BENCH_hotpath.json,
# failing if the vectorized path has regressed below 3x over the pinned
# scalar reference.
bench-hotpath:
	python -m repro bench --check

# Time the decision-kernel backends (python/threaded/compiled) on the
# large burst-overload case and append a backend-labeled entry to
# BENCH_hotpath.json.  Bit-identity across backends is always asserted;
# the 1.5x best-backend floor only on hosts with 4+ usable cores.
bench-kernel:
	python -m repro bench --kernels --check

# Time the fig6e-shaped sweep grid sequentially vs the 4-worker process
# pool vs the warm result cache, append to BENCH_sweep.json, and fail if
# the runner's suite-level speedup drops below 2.5x or the parallel
# results stop being bit-identical to sequential.
bench-sweep:
	python -m repro sweep --bench --check

# Replay the synthetic FB-like trace (130k+ flows, 32k coflows) end to
# end through the columnar engine and the pinned pre-columnar baseline,
# append to BENCH_bigtrace.json, and fail unless the results stay
# bit-identical and the end-to-end speedup clears 3x.
bench-bigtrace:
	python -m repro bench --bigtrace --check

# Stream 1M flows through the long-lived scheduler service (tick-by-tick
# admission, bounded in-flight window, incremental drain), append to
# BENCH_stream.json, and fail unless every flow retires, memory stays
# backlog-bounded, and steady-state throughput clears the floor.
bench-stream:
	python -m repro serve --bench --check

reproduce:
	python -m repro reproduce

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf benchmarks/reports src/repro.egg-info .pytest_cache .repro-cache
	find . -name __pycache__ -type d -exec rm -rf {} +
