.PHONY: install test bench reproduce examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

reproduce:
	python -m repro reproduce

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

clean:
	rm -rf benchmarks/reports src/repro.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
