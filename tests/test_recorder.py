"""The columnar flight recorder decodes to the legacy tracer stream.

:class:`repro.obs.recorder.FlightRecorder` accepts whole event batches as
ndarray columns; everything observable about it must match the per-record
:class:`repro.obs.trace.Tracer` a run with tracing enabled would have
produced — same kinds, same payloads, same order.  Covered here:

* unit append/decode per columnar stream, plus the ``emit`` fallback;
* engine-level equivalence: recorder-attached runs decode record for
  record identical to tracer-attached runs (generated and FB-synthesized
  workloads, cancellation, ``run(until=...)`` resume with mid-run
  ``submit_many``, and a hypothesis sweep over tied retirement
  boundaries);
* the tee: tracer and recorder attached together see the same stream;
* eager gating: a recorder never forces per-flow result dataclass
  materialization (that is its whole point);
* ring-buffer truncation (``keep_last``) and drop accounting;
* NPZ round-trip and JSONL export fidelity.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ExperimentSetup
from repro.core.events import EventKind
from repro.core.simulator import SliceSimulator
from repro.obs import NULL_RECORDER, Observability
from repro.obs.recorder import FlightRecorder
from repro.obs.trace import TraceRecord
from repro.schedulers import make_scheduler
from repro.traces.distributions import ConstantSize
from repro.traces.facebook import synthesize
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.units import mbps


def _make_sim(policy, obs, num_ports=6, bandwidth=mbps(100), slice_len=0.01):
    setup = ExperimentSetup(
        num_ports=num_ports, bandwidth=bandwidth, slice_len=slice_len
    )
    scheduler = make_scheduler(policy)
    base = setup.build_simulator(scheduler)
    return SliceSimulator(
        base.fabric,
        scheduler,
        slice_len=setup.slice_len,
        cpu=base.cpu,
        compression=base.compression,
        obs=obs,
    )


def _generated_coflows(seed=7, num_coflows=12, num_ports=6):
    cfg = WorkloadConfig(
        num_coflows=num_coflows, num_ports=num_ports,
        size_dist=ConstantSize(1e6), width=(1, 4), arrival_rate=4.0,
    )
    return generate_workload(cfg, np.random.default_rng(seed))


def _fb_coflows(seed=11, num_coflows=40, num_ports=6):
    return synthesize(
        np.random.default_rng(seed),
        num_coflows=num_coflows, num_ports=num_ports,
        arrival_rate=5.0, mean_reducer_mb=0.1,
    ).coflows


def _tracer_obs():
    return Observability(trace=True, metrics=False)


def _recorder_obs(**kw):
    return Observability(trace=False, metrics=False, record=True, **kw)


# ------------------------------------------------------ unit append/decode
class TestUnitDecode:
    def test_scalar_streams_roundtrip(self):
        rec = FlightRecorder()
        kinds = {EventKind.ARRIVAL, EventKind.COMPLETION}
        rec.add_decision(0.5, kinds, 7, 3)
        rec.add_jump(0.5, 4, {EventKind.START})
        rec.add_rates(0.5, 6, 120.5, 40.25)
        rec.add_cancel(0.7, 9, 2)
        rec.add_capacity(0.9, "egress", 3, 1e9)
        assert list(rec) == [
            TraceRecord(0.5, "decision",
                        {"kinds": kinds, "n_flows": 7, "n_coflows": 3}),
            TraceRecord(0.5, "jump",
                        {"n_slices": 4, "kinds": {EventKind.START}}),
            TraceRecord(0.5, "rates",
                        {"n_tx": 6, "total": 120.5, "max": 40.25}),
            TraceRecord(0.7, "cancel", {"coflow_id": 9, "n_flows": 2}),
            TraceRecord(0.9, "capacity",
                        {"side": "egress", "port": 3, "capacity": 1e9}),
        ]

    def test_batch_streams_expand_per_row(self):
        rec = FlightRecorder()
        rec.add_arrivals(0.1, [4, 5], [2, 3])
        rec.add_flow_completions(0.2, np.array([10, 11]), np.array([4, 4]))
        rec.add_coflow_completions(0.2, np.array([4]))
        rec.add_core_claims(0.3, [0, 2], [1, 3])
        assert list(rec) == [
            TraceRecord(0.1, "arrival", {"coflow_id": 4, "n_flows": 2}),
            TraceRecord(0.1, "arrival", {"coflow_id": 5, "n_flows": 3}),
            TraceRecord(0.2, "completion", {"flow_id": 10, "coflow_id": 4}),
            TraceRecord(0.2, "completion", {"flow_id": 11, "coflow_id": 4}),
            TraceRecord(0.2, "completion", {"coflow_id": 4}),
            TraceRecord(0.3, "core_claim", {"node": 0, "claims": 1}),
            TraceRecord(0.3, "core_claim", {"node": 2, "claims": 3}),
        ]

    def test_batch_record_streams_decode_to_one_record(self):
        rec = FlightRecorder()
        rec.add_beta(0.1, np.array([3, 1, 4]))
        rec.add_order(0.2, np.array([7, 8]), np.array([2.0, 6.0]),
                      np.array([4.0, 3.0]))
        assert list(rec) == [
            TraceRecord(0.1, "beta", {"flow_ids": [3, 1, 4]}),
            TraceRecord(0.2, "order",
                        {"units": [[7, 2.0, 4.0, 0.5], [8, 6.0, 3.0, 2.0]]}),
        ]
        assert len(rec) == 2
        assert rec.counts() == {"beta": 1, "order": 1}

    def test_emit_fallback_interleaves_in_order(self):
        rec = FlightRecorder()
        rec.add_decision(0.1, set(), 1, 1)
        rec.emit(0.1, "heartbeat", node=3)
        rec.add_rates(0.2, 1, 1.0, 1.0)
        kinds = [r.kind for r in rec]
        assert kinds == ["decision", "heartbeat", "rates"]
        assert rec.counts()["heartbeat"] == 1

    def test_empty_batches_are_skipped(self):
        rec = FlightRecorder()
        rec.add_arrivals(0.1, [], [])
        rec.add_flow_completions(0.1, np.array([], dtype=np.int64),
                                 np.array([], dtype=np.int64))
        rec.add_beta(0.1, [])
        assert list(rec) == []
        assert rec.batches == 0

    def test_growth_preserves_stream(self):
        rec = FlightRecorder()
        expect = []
        for i in range(500):  # far past the initial 64-row capacity
            rec.add_arrivals(float(i), [i], [1])
            expect.append(
                TraceRecord(float(i), "arrival",
                            {"coflow_id": i, "n_flows": 1})
            )
        assert list(rec) == expect

    def test_null_recorder_is_disabled(self):
        assert not NULL_RECORDER.enabled
        NULL_RECORDER.emit(0.0, "noise", x=1)  # silently ignored
        assert len(NULL_RECORDER) == 0

    def test_keep_last_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(keep_last=0)


# --------------------------------------------------- engine equivalence
def _run_both(policy, coflows):
    obs_tr, obs_rec = _tracer_obs(), _recorder_obs()
    for obs in (obs_tr, obs_rec):
        sim = _make_sim(policy, obs)
        sim.submit_many(coflows)
        sim.run()
    return obs_tr.tracer.records, list(obs_rec.recorder)


@pytest.mark.parametrize("policy", ["fvdf", "sebf", "fair"])
@pytest.mark.parametrize("workload", ["generated", "fb"])
def test_decoded_stream_matches_tracer(policy, workload):
    coflows = (
        _generated_coflows() if workload == "generated" else _fb_coflows()
    )
    traced, decoded = _run_both(policy, coflows)
    assert decoded == traced


def test_decoded_stream_matches_tracer_with_cancel_and_resume():
    """Cancellation, a run(until=...) horizon and mid-run submit_many all
    hit recorder hook sites outside the steady-state loop."""
    first = _generated_coflows(seed=19, num_coflows=10)
    late = _generated_coflows(seed=6, num_coflows=4)
    for c in late:
        c.arrival += 1.6

    def drive(obs):
        sim = _make_sim("fvdf", obs)
        sim.submit_many(first)
        sim.run(until=0.5)
        closed = {c.coflow_id for c in sim.result().coflow_results}
        target = next(
            c.coflow_id for c in first if c.coflow_id not in closed
        )
        sim.cancel_coflow(target)
        sim.run(until=1.5)
        sim.submit_many(late)
        sim.run()

    obs_tr, obs_rec = _tracer_obs(), _recorder_obs()
    drive(obs_tr)
    drive(obs_rec)
    decoded = list(obs_rec.recorder)
    assert "cancel" in {r.kind for r in decoded}
    assert decoded == obs_tr.tracer.records


def test_decoded_stream_matches_tracer_with_capacity_changes():
    coflows = _generated_coflows(seed=23, num_coflows=8)

    def drive(obs):
        sim = _make_sim("fvdf", obs)
        sim.submit_many(coflows)
        sim.schedule_capacity_change(0.3, "egress", 1, mbps(50))
        sim.run()

    obs_tr, obs_rec = _tracer_obs(), _recorder_obs()
    drive(obs_tr)
    drive(obs_rec)
    assert list(obs_rec.recorder) == obs_tr.tracer.records


@given(
    seed=st.integers(0, 2**16),
    num_coflows=st.integers(1, 6),
    max_width=st.integers(1, 4),
    policy=st.sampled_from(["fair", "fvdf"]),
)
@settings(max_examples=20, deadline=None)
def test_tied_boundary_batches_decode_identically(
    seed, num_coflows, max_width, policy
):
    """Constant sizes + clumped arrivals retire many flows in one batch;
    the batched recorder appends must decode to the same per-record
    completion stream the tracer logs."""
    cfg = WorkloadConfig(
        num_coflows=num_coflows, num_ports=4,
        size_dist=ConstantSize(5e5), width=(1, max_width),
        arrival_rate=200.0,
    )
    coflows = generate_workload(cfg, np.random.default_rng(seed))
    obs_tr, obs_rec = _tracer_obs(), _recorder_obs()
    for obs in (obs_tr, obs_rec):
        sim = _make_sim(policy, obs, num_ports=4)
        sim.submit_many(coflows)
        sim.run()
    assert list(obs_rec.recorder) == obs_tr.tracer.records


def test_tee_feeds_both_sinks_identically():
    """trace=True + record=True attaches both: the tracer logs the legacy
    stream and the recorder independently decodes to the same one."""
    obs = Observability(trace=True, metrics=False, record=True)
    sim = _make_sim("fvdf", obs)
    sim.submit_many(_generated_coflows(seed=3, num_coflows=8))
    sim.run()
    assert obs.tracer.enabled and obs.recorder.enabled
    assert len(obs.tracer.records) > 0
    assert list(obs.recorder) == obs.tracer.records


def test_to_tracer_feeds_existing_consumers():
    obs = _recorder_obs()
    sim = _make_sim("sebf", obs)
    sim.submit_many(_generated_coflows(seed=5, num_coflows=6))
    sim.run()
    tr = obs.recorder.to_tracer()
    assert tr.records == list(obs.recorder)
    buf = io.StringIO()
    assert tr.dump_jsonl(buf) == len(tr.records)


# ------------------------------------------------------------ eager gating
@pytest.mark.parametrize(
    "obs_kw",
    [
        {"trace": False, "metrics": False, "record": True},
        {"trace": False, "metrics": True},
    ],
    ids=["recorder-only", "metrics-only"],
)
def test_recorder_never_materializes_flow_results(monkeypatch, obs_kw):
    """Attaching a recorder (or metrics) must not trip the eager
    per-flow dataclass path — only per-record consumers (tracer,
    completion callbacks) pay for materialization."""
    calls = {"n": 0}
    orig = SliceSimulator._make_flow_result

    def counting(self, g):
        calls["n"] += 1
        return orig(self, g)

    monkeypatch.setattr(SliceSimulator, "_make_flow_result", counting)
    sim = _make_sim("fvdf", Observability(**obs_kw))
    sim.submit_many(_generated_coflows(seed=9, num_coflows=6))
    res = sim.run()
    assert calls["n"] == 0
    # ... and the lazy results still materialize on demand afterwards.
    assert len(list(res.flow_results)) > 0


def test_tracer_still_materializes(monkeypatch):
    calls = {"n": 0}
    orig = SliceSimulator._make_flow_result

    def counting(self, g):
        calls["n"] += 1
        return orig(self, g)

    monkeypatch.setattr(SliceSimulator, "_make_flow_result", counting)
    sim = _make_sim("fvdf", _tracer_obs())
    sim.submit_many(_generated_coflows(seed=9, num_coflows=6))
    sim.run()
    assert calls["n"] > 0


# -------------------------------------------------------------- ring mode
class TestRingBuffer:
    def test_keep_last_truncates_to_suffix(self):
        full = FlightRecorder()
        ring = FlightRecorder(keep_last=10)
        for i in range(100):
            for rec in (full, ring):
                rec.add_arrivals(float(i), [i], [1])
        assert ring.batches == 10
        assert list(ring) == list(full)[-10:]
        assert ring.dropped_batches == 90
        assert ring.dropped_records == 90

    def test_ring_spans_streams_and_misc(self):
        ring = FlightRecorder(keep_last=6)
        expect = []
        for i in range(60):
            ring.add_decision(float(i), {EventKind.START}, i, 1)
            expect.append(TraceRecord(
                float(i), "decision",
                {"kinds": {EventKind.START}, "n_flows": i, "n_coflows": 1},
            ))
            ring.emit(float(i), "heartbeat", node=i)
            expect.append(TraceRecord(float(i), "heartbeat", {"node": i}))
            ring.add_beta(float(i), [i, i + 1])
            expect.append(TraceRecord(float(i), "beta",
                                      {"flow_ids": [i, i + 1]}))
        assert list(ring) == expect[-6:]
        summary = ring.summary()
        assert summary["batches"] == 6
        assert summary["dropped_batches"] == 3 * 60 - 6

    def test_engine_run_under_ring_keeps_tail(self):
        coflows = _generated_coflows(seed=13, num_coflows=10)
        obs_full, obs_ring = _recorder_obs(), _recorder_obs(keep_last=25)
        for obs in (obs_full, obs_ring):
            sim = _make_sim("fvdf", obs)
            sim.submit_many(coflows)
            sim.run()
        full = list(obs_full.recorder)
        tail = list(obs_ring.recorder)
        assert obs_ring.recorder.batches == 25
        assert tail == full[len(full) - len(tail):]
        assert obs_ring.recorder.dropped_batches > 0


# ----------------------------------------------------------- NPZ round-trip
class TestNpzRoundtrip:
    def _recorded_run(self):
        obs = _recorder_obs()
        sim = _make_sim("fvdf", obs)
        sim.submit_many(_fb_coflows(seed=31, num_coflows=20))
        sim.run()
        return obs.recorder

    def test_save_load_preserves_jsonl(self, tmp_path):
        rec = self._recorded_run()
        path = tmp_path / "trace.npz"
        rec.save_npz(path)
        again = FlightRecorder.load_npz(path)
        a, b = io.StringIO(), io.StringIO()
        assert rec.dump_jsonl(a) == again.dump_jsonl(b) == len(rec)
        assert a.getvalue() == b.getvalue()
        assert again.counts() == rec.counts()

    def test_spill_clears_and_resumes(self, tmp_path):
        rec = FlightRecorder()
        for i in range(20):
            rec.add_arrivals(float(i), [i], [1])
        n = rec.spill_npz(tmp_path / "chunk0.npz")
        assert n == 20
        assert len(rec) == 0
        rec.add_arrivals(99.0, [99], [1])  # buffers still usable
        assert len(rec) == 1
        chunk = FlightRecorder.load_npz(tmp_path / "chunk0.npz")
        assert len(chunk) == 20

    def test_ring_save_drops_only_dead_batches(self, tmp_path):
        ring = FlightRecorder(keep_last=5)
        for i in range(30):
            ring.add_arrivals(float(i), [i], [1])
        live = list(ring)
        ring.save_npz(tmp_path / "ring.npz")
        again = FlightRecorder.load_npz(tmp_path / "ring.npz")
        assert list(again) == live
        assert again.dropped_batches == ring.dropped_batches


# ------------------------------------------------- ring-mode edge cases
def _journal_invariants(rec):
    """Every live batch must reference live rows of its stream."""
    jl = rec._journal
    jc = jl.cols
    for i in range(jl.head, jl.n):
        code = int(jc["stream"][i])
        a = int(jc["start"][i])
        b = a + int(jc["count"][i])
        if code == 10:  # _MISC: starts index the fallback list
            assert rec._misc_head <= a < len(rec._misc)
            continue
        st = rec._streams[code]
        assert st.head <= a <= b <= st.n, (
            f"batch {i} of stream {code}: [{a}, {b}) outside "
            f"live [{st.head}, {st.n})"
        )


class TestRingEdgeCases:
    """Empty batches and compaction-on-a-boundary must not corrupt the
    rebased journal: decode must always equal the legacy stream suffix."""

    def test_empty_order_batches_decode_to_empty_units(self):
        # Tracer parity: fvdf emits an ``order`` record even with no
        # rankable units, so an empty batch journals one record.
        rec = FlightRecorder()
        rec.add_order(0.1, np.array([]), np.array([]), np.array([]))
        assert list(rec) == [TraceRecord(0.1, "order", {"units": []})]
        assert rec.counts() == {"order": 1}
        assert len(rec) == 1

    def test_empty_batches_survive_ring_drops_and_compaction(self):
        # Interleave empty order batches (start == n, zero rows) with
        # batches large enough to force both ensure() paths (dead-prefix
        # compaction and growth) under an aggressive ring bound.
        rec = FlightRecorder(keep_last=3)
        expect = []
        for i in range(40):
            k = [0, 33, 0, 64][i % 4]
            rec.add_order(float(i), np.arange(k), np.full(k, 2.0),
                          np.ones(k))
            expect.append(TraceRecord(
                float(i), "order",
                {"units": [[int(j), 2.0, 1.0, 2.0] for j in range(k)]},
            ))
            _journal_invariants(rec)
        got = list(rec)
        assert got == expect[rec.dropped_records:]
        assert len(rec) == len(got) == 3

    def test_compaction_exactly_on_batch_boundary(self):
        # Batch sizes chosen so drops leave the dead prefix ending
        # exactly at a batch start and appends exactly fill the 64-row
        # initial buffer; enumerate alignments exhaustively.
        import itertools

        sizes = (0, 16, 33, 64)
        for keep in (1, 2):
            for seq in itertools.product(sizes, repeat=4):
                rec = FlightRecorder(keep_last=keep)
                expect = []
                for t, k in enumerate(seq):
                    rec.add_order(float(t), np.arange(k),
                                  np.full(k, 2.0), np.ones(k))
                    expect.append(TraceRecord(
                        float(t), "order",
                        {"units": [[int(j), 2.0, 1.0, 2.0]
                                   for j in range(k)]},
                    ))
                    _journal_invariants(rec)
                assert list(rec) == expect[rec.dropped_records:], (
                    f"keep={keep} seq={seq}"
                )

    def test_ring_decode_matches_tracer_suffix_fuzz(self):
        # Mixed-stream fuzz: per-row, batch-record, scalar, and fallback
        # appends mirrored against the records a Tracer would hold, with
        # the ring dropping most of the stream.
        import random

        def one(rec, expect, op, t, rng):
            if op == "arrival":
                k = rng.choice([0, 1, 17])
                rec.add_arrivals(t, list(range(k)), [2] * k)
                expect.extend(
                    TraceRecord(t, "arrival", {"coflow_id": i, "n_flows": 2})
                    for i in range(k)
                )
            elif op == "order":
                k = rng.choice([0, 0, 9])
                rec.add_order(t, np.arange(k), np.full(k, 2.0), np.ones(k))
                expect.append(TraceRecord(
                    t, "order",
                    {"units": [[int(i), 2.0, 1.0, 2.0] for i in range(k)]},
                ))
            elif op == "decision":
                rec.add_decision(t, {EventKind.START}, 3, 1)
                expect.append(TraceRecord(
                    t, "decision",
                    {"kinds": {EventKind.START}, "n_flows": 3,
                     "n_coflows": 1},
                ))
            elif op == "misc":
                rec.emit(t, "heartbeat", x=int(t))
                expect.append(TraceRecord(t, "heartbeat", {"x": int(t)}))
            else:  # flow completions
                k = rng.choice([0, 11])
                rec.add_flow_completions(t, np.arange(k), np.arange(k))
                expect.extend(
                    TraceRecord(t, "completion",
                                {"flow_id": i, "coflow_id": i})
                    for i in range(k)
                )

        ops = ["arrival", "order", "decision", "misc", "flow"]
        for seed in range(25):
            rng = random.Random(seed)
            rec = FlightRecorder(keep_last=rng.choice([1, 2, 5, 20]))
            expect = []
            for s in range(rng.choice([8, 60, 400])):
                one(rec, expect, rng.choice(ops), float(s), rng)
            got = list(rec)
            assert got == expect[rec.dropped_records:], f"seed={seed}"
            assert sum(rec.counts().values()) == len(got)
            _journal_invariants(rec)

    def test_misc_journal_compaction_crossing(self, tmp_path):
        # The fallback list compacts once 1024 dead records accumulate;
        # decode, counts, and the NPZ round-trip must all survive the
        # crossing (and the list must stay bounded).
        rec = FlightRecorder(keep_last=3)
        expect = []
        for i in range(2600):
            rec.emit(float(i), "bus", node=i)
            expect.append(TraceRecord(float(i), "bus", {"node": i}))
        got = list(rec)
        assert got == expect[rec.dropped_records:]
        assert len(rec._misc) < 2048  # bounded, not stream-length
        _journal_invariants(rec)
        rec.save_npz(tmp_path / "misc.npz")
        again = FlightRecorder.load_npz(tmp_path / "misc.npz")
        assert list(again) == got
