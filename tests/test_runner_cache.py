"""Unit tests for the content-addressed result cache and its digests."""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, run_policy
from repro.core.fvdf import FVDFScheduler
from repro.runner import (
    ResultCache,
    ResultSummary,
    RunSpec,
    WorkloadSpec,
    cache_enabled_by_env,
    execute_spec,
    run_specs,
)
from repro.traces.distributions import ConstantSize
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.units import mbps

SETUP = ExperimentSetup(num_ports=4, bandwidth=mbps(100), slice_len=0.01)


def _config(num_coflows=6):
    return WorkloadConfig(
        num_coflows=num_coflows, num_ports=4, size_dist=ConstantSize(1e6),
        width=(1, 3), arrival_rate=4.0,
    )


def _coflows(seed=3):
    return generate_workload(_config(), np.random.default_rng(seed))


def _spec(**kw):
    kw.setdefault("policy", "fvdf")
    kw.setdefault("workload", WorkloadSpec.generated(_config(), seed=3))
    kw.setdefault("setup", SETUP)
    return RunSpec(**kw)


class TestDigest:
    def test_stable_across_equal_specs(self):
        assert _spec().digest() == _spec().digest()
        assert _spec().digest() is not None

    def test_inline_digest_ignores_global_id_counters(self):
        """flow_id/coflow_id come from process-global counters; two
        identically generated traces digest the same even though their
        ids differ."""
        a = WorkloadSpec.inline(_coflows())
        b = WorkloadSpec.inline(_coflows())
        ids = lambda cs: [c.coflow_id for c in cs]  # noqa: E731
        assert ids(a.build()) != ids(b.build())
        assert _spec(workload=a).digest() == _spec(workload=b).digest()

    @pytest.mark.parametrize("change", ["policy", "params", "workload", "setup"])
    def test_any_content_change_changes_digest(self, change):
        base = _spec()
        changed = {
            "policy": lambda: _spec(policy="sebf"),
            "params": lambda: _spec(params={"starvation_window": 5}),
            "workload": lambda: _spec(
                workload=WorkloadSpec.generated(_config(), seed=4)
            ),
            "setup": lambda: _spec(
                setup=ExperimentSetup(num_ports=4, bandwidth=mbps(200),
                                      slice_len=0.01)
            ),
        }[change]()
        assert base.digest() != changed.digest()

    def test_full_and_arrays_change_digest(self):
        # A summary, a summary-with-arrays and a full result are three
        # different payloads; they must not collide in the store.
        digests = {
            _spec().digest(),
            _spec(arrays=True).digest(),
            _spec(full=True).digest(),
        }
        assert len(digests) == 3

    def test_live_scheduler_is_uncacheable(self):
        assert _spec(policy=FVDFScheduler()).digest() is None

    def test_callable_workload_needs_tag(self):
        def factory(rng):
            return generate_workload(_config(), rng)

        untagged = _spec(workload=WorkloadSpec.from_callable(factory, seed=3))
        tagged = _spec(
            workload=WorkloadSpec.from_callable(factory, seed=3, tag="const6")
        )
        assert untagged.digest() is None
        assert tagged.digest() is not None

    def test_background_setup_is_uncacheable(self):
        setup = ExperimentSetup(
            num_ports=4, bandwidth=mbps(100), slice_len=0.01,
            background=lambda t: 0.1,
        )
        assert _spec(setup=setup).digest() is None


class TestEnvControls:
    def test_repro_cache_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert not cache_enabled_by_env()
        assert not ResultCache().enabled
        # resolve(True) still honours the kill switch.
        assert not ResultCache.resolve(True).enabled

    def test_default_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert cache_enabled_by_env()

    def test_cache_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        assert ResultCache().root == tmp_path / "store"

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = ResultCache(root=tmp_path / "store", enabled=False)
        spec = _spec()
        assert cache.get(spec) is None
        assert not cache.put(spec, execute_spec(spec).summary)
        assert not (tmp_path / "store").exists()


class TestRoundtrip:
    def test_summary_json_roundtrip(self):
        summary = execute_spec(_spec(arrays=True)).summary
        assert isinstance(summary, ResultSummary)
        again = ResultSummary.from_json(summary.to_json())
        assert again == summary  # exact, including the per-flow arrays

    def test_summary_store_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        spec = _spec()
        summary = execute_spec(spec).summary
        assert cache.put(spec, summary)
        assert cache.get(spec) == summary

    def test_full_result_store_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        spec = _spec(full=True)
        result = run_policy("fvdf", spec.workload.build(), SETUP)
        assert cache.put(spec, result)
        cached = cache.get(spec)
        assert [f.fct for f in cached.flow_results] == [
            f.fct for f in result.flow_results
        ]
        assert cached.makespan == result.makespan

    def test_uncacheable_spec_still_runs(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        spec = _spec(policy=FVDFScheduler(), key="live")
        [out] = run_specs([spec], workers=0, cache=cache)
        assert out.summary.avg_cct > 0
        assert not cache.put(spec, out.summary)
        assert list(tmp_path.iterdir()) == []  # nothing was stored

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        spec = _spec()
        summary = execute_spec(spec).summary
        cache.put(spec, summary)
        path = cache._path(spec.digest(), spec.full)
        path.write_text("{not json")
        assert cache.get(spec) is None
        assert not path.exists()  # corrupt file dropped
        # A subsequent put/get works again.
        cache.put(spec, summary)
        assert cache.get(spec) == summary

    def test_summary_is_columnar_no_dataclass_roundtrip(self):
        """ResultSummary.of reads the result's cached columns directly —
        the lazy sequences stay unmaterialized and the arrays are the
        very objects SimulationResult caches."""
        result = run_policy("fvdf", _coflows(), SETUP)
        summary = ResultSummary.of("fvdf", result, arrays=True)
        assert summary.fct is result.fct_array
        assert summary.flow_size is result.size_array
        assert summary.cct is result.cct_array
        assert summary.coflow_finish is result.finish_array
        # ... and they match the dataclass path bit for bit.
        assert np.array_equal(
            summary.fct, [f.fct for f in result.flow_results]
        )
        assert np.array_equal(
            summary.cct, [c.cct for c in result.coflow_results]
        )
        assert summary.num_flows == len(result.flow_results)
        assert summary.num_coflows == len(result.coflow_results)

    def test_warm_cache_summary_identical(self, tmp_path):
        """A warm-cache hit returns a summary equal (bit-exact arrays
        included) to the one computed live from the columnar result."""
        cache = ResultCache(root=tmp_path, enabled=True)
        spec = _spec(arrays=True)
        [cold] = run_specs([spec], workers=0, cache=cache)
        [warm] = run_specs([spec], workers=0, cache=cache)
        assert (cache.hits, cache.misses) == (1, 1)
        assert warm.summary == cold.summary
        live = ResultSummary.of(
            "fvdf", run_policy("fvdf", spec.workload.build(), SETUP),
            arrays=True,
        )
        assert warm.summary == live

    def test_hit_miss_counters(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        specs = [_spec(), _spec(policy="sebf")]
        run_specs(specs, workers=0, cache=cache)
        assert (cache.hits, cache.misses) == (0, 2)
        run_specs(specs, workers=0, cache=cache)
        assert (cache.hits, cache.misses) == (2, 2)
        assert cache.stats()["hits"] == 2

    def test_corrupt_counter_and_metrics(self, tmp_path):
        """A corrupt entry increments the dedicated counter and all three
        stats flow into an obs metrics registry via record_metrics."""
        from repro.obs.metrics import MetricsRegistry

        cache = ResultCache(root=tmp_path, enabled=True)
        spec = _spec()
        cache.put(spec, execute_spec(spec).summary)
        cache._path(spec.digest(), spec.full).write_text("{not json")
        assert cache.get(spec) is None
        assert cache.corrupt == 1
        assert cache.stats()["corrupt"] == 1
        metrics = MetricsRegistry(enabled=True)
        cache.record_metrics(metrics)
        dump = metrics.dump()
        assert dump["cache.misses"]["value"] == 1
        assert dump["cache.corrupt_dropped"]["value"] == 1
        assert dump["cache.hits"]["value"] == 0


class TestConcurrentWrites:
    """put() must be atomic under thread-level concurrency: the old
    pid-suffixed temp name collided when threads in one process raced on
    the same digest, interleaving writes into a single temp file."""

    def test_racing_threads_same_spec_publish_valid_entry(self, tmp_path):
        import threading

        cache = ResultCache(root=tmp_path, enabled=True)
        spec = _spec()
        summary = execute_spec(spec).summary
        start = threading.Barrier(8)
        results = []

        def writer():
            start.wait()
            for _ in range(25):
                results.append(cache.put(spec, summary))

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(results) and len(results) == 200
        # The published entry is always complete and parseable.
        assert cache.get(spec) == summary
        # No orphaned temp files survive the race.
        leftovers = [p for p in tmp_path.rglob("*.tmp")]
        assert leftovers == []

    def test_racing_threads_full_pickle(self, tmp_path):
        import threading

        cache = ResultCache(root=tmp_path, enabled=True)
        spec = _spec(full=True)
        result = run_policy("fvdf", spec.workload.build(), SETUP)
        start = threading.Barrier(4)

        def writer():
            start.wait()
            for _ in range(10):
                assert cache.put(spec, result)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        cached = cache.get(spec)
        assert cached.makespan == result.makespan
        assert list(tmp_path.rglob("*.tmp")) == []

    def test_temp_files_stay_in_cache_shard_dir(self, tmp_path, monkeypatch):
        """Temp names must land next to the destination (same filesystem,
        atomic os.replace) — never in the global tempdir."""
        cache = ResultCache(root=tmp_path, enabled=True)
        spec = _spec()
        summary = execute_spec(spec).summary
        seen = []
        import tempfile as _tempfile

        real = _tempfile.mkstemp

        def spy(*a, **kw):
            seen.append(kw.get("dir"))
            return real(*a, **kw)

        monkeypatch.setattr("repro.runner.cache.tempfile.mkstemp", spy)
        assert cache.put(spec, summary)
        digest = spec.digest()
        assert seen == [tmp_path / digest[:2]]
