"""Experiment harness and report rendering."""

import numpy as np
import pytest

from repro.analysis import (
    ExperimentSetup,
    render_cdf,
    render_series,
    render_table,
    run_many,
    run_policy,
    speedups_over,
)
from repro.errors import ConfigurationError
from repro.traces.distributions import ConstantSize
from repro.traces.generator import WorkloadConfig, generate_workload


@pytest.fixture
def workload(rng):
    cfg = WorkloadConfig(
        num_coflows=6, num_ports=4, size_dist=ConstantSize(2.0), width=2,
        arrival_rate=2.0,
    )
    return generate_workload(cfg, rng)


@pytest.fixture
def setup():
    return ExperimentSetup(num_ports=4, bandwidth=1.0, slice_len=0.01)


class TestHarness:
    def test_run_policy_by_name(self, workload, setup):
        res = run_policy("sebf", workload, setup)
        assert len(res.coflow_results) == 6

    def test_run_many_paired(self, workload, setup):
        out = run_many(["fifo", "sebf", "fvdf"], workload, setup)
        assert set(out) == {"fifo", "sebf", "fvdf"}
        # identical workload: same total bytes everywhere
        totals = {n: r.total_bytes_original for n, r in out.items()}
        assert len(set(round(v, 6) for v in totals.values())) == 1

    def test_workload_reusable_across_runs(self, workload, setup):
        r1 = run_policy("sebf", workload, setup)
        r2 = run_policy("sebf", workload, setup)
        assert r1.avg_cct == pytest.approx(r2.avg_cct)

    def test_speedups_over(self, workload, setup):
        out = run_many(["fifo", "fvdf"], workload, setup)
        sp = speedups_over(out, ours="fvdf", metric="avg_cct")
        assert "fifo" in sp and sp["fifo"] > 0
        with pytest.raises(ConfigurationError):
            speedups_over(out, ours="nope")

    def test_setup_sweep_copy(self, setup):
        s2 = setup.with_(bandwidth=2.0)
        assert s2.bandwidth == 2.0
        assert setup.bandwidth == 1.0

    def test_setup_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentSetup(num_ports=0)


class TestRendering:
    def test_render_table_alignment(self):
        out = render_table(["name", "value"], [["a", 1.5], ["long-name", 22.25]],
                           title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_render_table_mismatched_row(self):
        with pytest.raises(ConfigurationError):
            render_table(["a"], [["x", "y"]])

    def test_render_cdf(self):
        out = render_cdf([1.0, 2.0, 3.0, 4.0], points=[2.0, 4.0])
        assert "50.0%" in out and "100.0%" in out

    def test_render_cdf_empty(self):
        assert "(no data)" in render_cdf([])

    def test_render_series(self):
        out = render_series([1, 2], [0.5, 0.7], xlabel="bw", ylabel="speedup")
        assert "bw" in out and "speedup" in out
