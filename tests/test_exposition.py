"""The live telemetry plane: bucketed histograms, rolling-window rates,
Prometheus exposition, plane health/endpoints, and the `repro top` frame.

The plane's contract has four load-bearing edges, each pinned here:

* histogram buckets are fixed-boundary and cumulative-renderable, and
  their typed dumps merge losslessly (pool workers + streamed runs fold
  into one registry without losing bucket detail);
* the rolling window's rates are the windowed counter deltas divided by
  the windowed wall time — checked against hand-computed ticks;
* `/healthz` tracks the watchdog (a stalled driver turns 503, a cleanly
  finished one stays 200), `/readyz` flips on the first tick;
* `render_dashboard` is a pure snapshot-dict → string function, so one
  `repro top --once` frame is pinned without a socket in sight.
"""

import json
import math
import urllib.error
import urllib.request

import pytest

from repro.analysis import ExperimentSetup
from repro.obs import Observability
from repro.obs.exposition import (
    SNAPSHOT_SCHEMA,
    TelemetryPlane,
    render_dashboard,
    render_prometheus,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.window import STREAM_RATE_KEYS, RollingWindow
from repro.schedulers import make_scheduler
from repro.service import SourceSpec, StreamDriver
from repro.traces.distributions import ConstantSize
from repro.units import KB, mbps

SETUP = ExperimentSetup(num_ports=4, bandwidth=mbps(100), slice_len=0.01)


def _driver(*, obs=None, **kw):
    spec = SourceSpec(
        rate=40.0, num_ports=4, width=(1, 3),
        size_dist=ConstantSize(200 * KB), seed=5, limit=30,
    )
    sim = SETUP.build_simulator(make_scheduler("fvdf-flow"), obs=obs)
    kw.setdefault("tick", 0.2)
    return StreamDriver(sim, spec.build(), setup=SETUP, source_spec=spec, **kw)


class TestBucketedHistogram:
    def test_le_semantics_and_overflow(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 10.0, 11.0):
            h.observe(v)
        # bounds get +inf appended; a value equal to a bound lands in it.
        assert h.bounds == (1.0, 10.0, math.inf)
        assert h.buckets == [2, 2, 1]
        assert h.count == 5 and h.min == 0.5 and h.max == 11.0

    def test_default_bounds_log_spaced_and_clean(self):
        assert DEFAULT_BUCKETS[0] == 1e-06
        assert DEFAULT_BUCKETS[-1] == math.inf
        assert 2.5e-06 in DEFAULT_BUCKETS and 0.25 in DEFAULT_BUCKETS
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
        # Bounds are parsed decimals, not accumulated products — the
        # exposition `le` labels must not read 2.4999999999999998e-06.
        assert all(
            len(repr(b)) <= 8 for b in DEFAULT_BUCKETS[:-1]
        ), DEFAULT_BUCKETS

    def test_quantiles_within_bucket_width(self):
        h = Histogram("h")
        for i in range(1, 101):
            h.observe(i / 1000.0)  # 1ms..100ms uniform
        s = h.summary()
        assert 0.025 <= s["p50"] <= 0.1
        assert s["p95"] >= s["p50"]
        assert s["p99"] <= s["max"] == 0.1
        assert s["p50"] >= s["min"] == 0.001

    def test_empty_summary_schema_matches_disabled(self):
        disabled = MetricsRegistry(enabled=False)
        assert Histogram("h").summary() == disabled.histogram("h").summary()
        assert disabled.histogram("h").quantile(0.5) == 0.0

    def test_dump_round_trip_lossless(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3.5)
        reg.gauge("g").set(7.0)
        h = reg.histogram("h", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        d = reg.dump()
        assert d["h"]["le"] == [0.1, 1.0]
        assert d["h"]["buckets"] == [1, 1, 1]
        assert len(d["h"]["buckets"]) == len(d["h"]["le"]) + 1
        # JSON-able (no bare infinities) and lossless through from_dump.
        restored = MetricsRegistry.from_dump(json.loads(json.dumps(d)))
        assert restored.dump() == d

    def test_merge_adds_buckets_elementwise(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        for reg, vals in ((a, (0.05, 0.5)), (b, (0.5, 2.0))):
            h = reg.histogram("h", bounds=(0.1, 1.0))
            for v in vals:
                h.observe(v)
        a.merge(b.dump())
        h = a.histogram("h")
        assert h.buckets == [1, 2, 1]
        assert h.count == 4
        assert h.min == 0.05 and h.max == 2.0

    def test_merge_mismatched_bounds_raises(self):
        a = MetricsRegistry()
        a.histogram("h", bounds=(0.1, 1.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", bounds=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="boundaries"):
            a.merge(b.dump())

    def test_merge_pre_bucket_dump_folds_moments_only(self):
        # A dump from before buckets existed has no "le": its moments
        # fold in, but no bucket detail can be invented for it.
        a = MetricsRegistry()
        a.histogram("h", bounds=(1.0,)).observe(0.5)
        a.merge({"h": {"type": "histogram", "count": 2, "sum": 6.0,
                       "min": 2.0, "max": 4.0, "mean": 3.0}})
        h = a.histogram("h")
        assert h.count == 3 and h.total == 6.5
        assert h.min == 0.5 and h.max == 4.0
        assert h.buckets == [1, 0]  # only the local observation is binned

    def test_merge_mixed_types_and_empty_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        b.counter("c").inc(2)
        b.gauge("g").set(5.0)
        b.histogram("h")  # registered, never observed
        a.counter("c").inc(1)
        a.gauge("g").set(9.0)
        a.merge(b.dump())
        assert a.counter("c").value == 3.0
        assert a.gauge("g").value == 9.0  # peak-seen semantics
        assert a.histogram("h").count == 0  # name registered, nothing folded
        assert "h" in a.names()

    def test_disabled_registry_ignores_merge(self):
        src = MetricsRegistry()
        src.counter("c").inc(5)
        dst = MetricsRegistry(enabled=False)
        dst.merge(src.dump())
        assert dst.dump() == {}


class TestRollingWindow:
    def test_rates_match_hand_computed_deltas(self):
        w = RollingWindow(capacity=8)
        w.prime({"flows_admitted": 100, "bytes_sent": 1000,
                 "bytes_original": 2000})
        w.push(0.5, {"flows_admitted": 130, "bytes_sent": 1500,
                     "bytes_original": 3000})
        w.push(1.5, {"flows_admitted": 200, "bytes_sent": 2500,
                     "bytes_original": 5000})
        # deltas: flows 30+70=100 over 2.0s wall; bytes 500+1000=1500.
        rates = w.rates()
        assert rates["flows_admitted"] == pytest.approx(50.0)
        assert rates["bytes_sent"] == pytest.approx(750.0)
        assert rates["restamped"] == pytest.approx(0.0)
        snap = w.snapshot()
        assert snap["ticks"] == 2
        assert snap["span_wall_s"] == pytest.approx(2.0)
        # window traffic reduction: 1 - 1500/3000 over the window.
        assert snap["traffic_reduction"] == pytest.approx(0.5)

    def test_ring_drops_oldest_beyond_capacity(self):
        w = RollingWindow(capacity=3, keys=("x",))
        w.prime({"x": 0})
        for i in range(1, 6):  # cumulative x = 1..5, one per tick
            w.push(1.0, {"x": i})
        assert len(w) == 3
        assert w.totals()["x"] == pytest.approx(3.0)  # last 3 deltas of 1
        assert w.span_wall_s == pytest.approx(3.0)

    def test_empty_and_zero_span_rates_are_none(self):
        w = RollingWindow(capacity=4)
        assert all(v is None for v in w.rates().values())
        assert w.snapshot()["traffic_reduction"] is None
        w.push(0.0, {k: 0 for k in STREAM_RATE_KEYS})
        assert all(v is None for v in w.rates().values())

    def test_unprimed_first_push_measures_from_zero(self):
        w = RollingWindow(capacity=4, keys=("x",))
        w.push(1.0, {"x": 7})
        assert w.totals()["x"] == pytest.approx(7.0)

    def test_tick_wall_percentiles_exact(self):
        w = RollingWindow(capacity=10, keys=("x",))
        for wall in (0.01, 0.02, 0.03, 0.04, 0.10):
            w.push(wall, {"x": 0})
        tw = w.tick_wall()
        assert tw["count"] == 5
        assert tw["min"] == 0.01 and tw["max"] == 0.10
        assert tw["p50"] == 0.03  # nearest rank on the sorted window
        assert tw["p95"] == 0.10
        assert tw["mean"] == pytest.approx(0.04)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RollingWindow(capacity=0)


class TestRenderPrometheus:
    def test_counter_gauge_histogram_exposition(self):
        reg = MetricsRegistry()
        reg.counter("engine.decisions").inc(3)
        reg.gauge("stream.in_flight").set(42.5)
        h = reg.histogram("tick.wall_s", bounds=(0.1, 1.0))
        for v in (0.05, 0.5, 2.0):
            h.observe(v)
        text = render_prometheus(reg)
        lines = text.splitlines()
        assert "# TYPE repro_engine_decisions_total counter" in lines
        assert "repro_engine_decisions_total 3" in lines
        assert "# TYPE repro_stream_in_flight gauge" in lines
        assert "repro_stream_in_flight 42.5" in lines
        # Cumulative buckets ending in +Inf == count, then sum and count.
        assert 'repro_tick_wall_s_bucket{le="0.1"} 1' in lines
        assert 'repro_tick_wall_s_bucket{le="1"} 2' in lines
        assert 'repro_tick_wall_s_bucket{le="+Inf"} 3' in lines
        assert "repro_tick_wall_s_sum 2.55" in lines
        assert "repro_tick_wall_s_count 3" in lines
        assert text.endswith("\n")

    def test_stream_window_and_extra_gauges(self):
        w = RollingWindow(capacity=4)
        w.push(2.0, {"flows_admitted": 10, "bytes_sent": 50,
                     "bytes_original": 100})
        text = render_prometheus(
            None,
            stream={"flows_done": 7, "policy": "fvdf", "wall_s": 1.25},
            window=w.snapshot(),
            extra_gauges={"repro_up": 1.0},
        )
        assert "repro_stream_flows_done 7" in text
        assert "policy" not in text  # non-numeric stream fields skipped
        assert "repro_window_flows_admitted_per_s 5" in text
        assert "repro_window_traffic_reduction 0.5" in text
        assert "repro_up 1" in text
        # Keys whose windowed rate exists render; None rates never do.
        assert "repro_window_spills_per_s 0" in text

    def test_registry_wins_stream_name_collisions(self):
        # The stream.ticks gauge and the StreamStats `ticks` field both
        # render as repro_stream_ticks; a duplicated family makes
        # Prometheus reject the entire scrape, so the registry wins and
        # the stream-dict copy is skipped.
        reg = MetricsRegistry()
        reg.gauge("stream.ticks").set(7)
        text = render_prometheus(
            reg, stream={"ticks": 7, "flows_done": 3},
            extra_gauges={"repro_stream_flows_done": 99.0},
        )
        lines = text.splitlines()
        assert lines.count("# TYPE repro_stream_ticks gauge") == 1
        assert lines.count("repro_stream_ticks 7") == 1
        assert "repro_stream_flows_done 3" in lines  # stream beat extras
        assert "repro_stream_flows_done 99" not in lines
        keys = [l.rsplit(" ", 1)[0] for l in lines if not l.startswith("#")]
        assert len(keys) == len(set(keys))

    def test_empty_window_renders_no_rate_samples(self):
        text = render_prometheus(None, window=RollingWindow().snapshot())
        assert "_per_s" not in text
        assert "traffic_reduction" not in text

    def test_disabled_registry_contributes_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("engine.decisions").inc(3)
        assert render_prometheus(reg) == "\n"


class TestTelemetryPlane:
    def test_plane_off_driver_registers_zero_stream_instruments(self):
        d = _driver()
        d.run()
        assert d._plane is None
        assert not any(
            n.startswith("stream.") for n in d.sim.obs.metrics.names()
        )

    def test_registry_policy_never_mutates_disabled(self):
        d = _driver()  # NULL_OBS: disabled metrics
        plane = TelemetryPlane(d)
        assert plane.registry is not d.sim.obs.metrics
        assert plane.registry.enabled
        d2 = _driver(obs=Observability(trace=False, metrics=True))
        plane2 = TelemetryPlane(d2)
        assert plane2.registry is d2.sim.obs.metrics

    def test_on_tick_publishes_instruments_and_window(self):
        d = _driver()
        plane = TelemetryPlane(d)
        stats = d.run()
        assert stats.ticks > 0
        assert plane.ready and plane.finished and plane.healthy
        reg = plane.registry
        assert reg.value("stream.ticks") == stats.ticks
        assert reg.histogram("stream.tick_wall_s").count == stats.ticks
        assert len(plane.window) == min(stats.ticks, plane.window.capacity)
        # Windowed lifetime == stream lifetime on a short run.
        assert plane.window.totals()["flows_admitted"] == stats.flows_submitted
        assert plane.window.totals()["coflows_retired"] == stats.coflows_done

    def test_watchdog_health_transitions(self):
        d = _driver()
        plane = TelemetryPlane(d, watchdog_s=0.5)
        assert not plane.ready
        assert plane.healthy  # within the watchdog of plane creation
        plane.started_mono -= 1.0  # never ticked, watchdog elapsed
        assert not plane.healthy
        plane.on_tick(0.01)  # a tick lands: ready + healthy again
        assert plane.ready and plane.healthy
        plane._last_tick_mono -= 1.0  # stalled mid-stream
        assert not plane.healthy
        plane.on_finish()  # clean completion overrides the watchdog
        assert plane.healthy

    def test_watchdog_must_be_positive(self):
        with pytest.raises(ValueError):
            TelemetryPlane(_driver(), watchdog_s=0.0)

    def test_snapshot_schema_and_consistency(self):
        d = _driver()
        plane = TelemetryPlane(d)
        stats = d.run()
        snap = plane.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA == "repro-live-v1"
        assert snap["policy"] == "fvdf-flow"
        assert snap["kernel"]  # resolved backend name, never empty
        assert snap["ticks"] == stats.ticks
        assert snap["finished"] and snap["ready"] and snap["healthy"]
        assert snap["stream"] == d.stats.as_dict()
        assert snap["window"]["ticks"] == len(plane.window)
        assert snap["last_tick_age_s"] >= 0.0
        json.dumps(snap)  # the /snapshot body must be JSON-able

    def test_http_endpoints_end_to_end(self):
        d = _driver()
        plane = TelemetryPlane(d)
        port = plane.start(0)
        base = f"http://127.0.0.1:{port}"
        try:
            # Before the first tick: alive but not ready.
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(base + "/readyz", timeout=5)
            assert exc.value.code == 503
            d.run()
            with urllib.request.urlopen(base + "/metrics", timeout=5) as r:
                assert r.status == 200
                assert "version=0.0.4" in r.headers["Content-Type"]
                text = r.read().decode()
            assert "# TYPE repro_stream_in_flight gauge" in text
            assert 'repro_stream_tick_wall_s_bucket{le="+Inf"}' in text
            assert "repro_ready 1" in text
            # Valid exposition: every sample name+labelset appears once
            # (a duplicate, e.g. repro_stream_ticks from both the gauge
            # and the stats dict, fails the whole Prometheus scrape).
            keys = [
                l.rsplit(" ", 1)[0] for l in text.splitlines()
                if l and not l.startswith("#")
            ]
            assert len(keys) == len(set(keys))
            with urllib.request.urlopen(base + "/snapshot", timeout=5) as r:
                snap = json.loads(r.read().decode())
            assert snap["schema"] == "repro-live-v1"
            with urllib.request.urlopen(base + "/healthz", timeout=5) as r:
                assert json.loads(r.read().decode())["healthy"] is True
            with urllib.request.urlopen(base + "/readyz", timeout=5) as r:
                assert json.loads(r.read().decode())["ready"] is True
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(base + "/nope", timeout=5)
            assert exc.value.code == 404
        finally:
            plane.stop()
        assert not plane.serving
        plane.stop()  # idempotent

    def test_start_twice_raises(self):
        plane = TelemetryPlane(_driver())
        plane.start(0)
        try:
            with pytest.raises(RuntimeError):
                plane.start(0)
        finally:
            plane.stop()


class TestDashboard:
    def test_one_shot_frame_from_live_snapshot(self):
        d = _driver()
        plane = TelemetryPlane(d)
        d.run()
        frame = render_dashboard(plane.snapshot(), color=False)
        assert frame.startswith("repro top")
        assert "policy fvdf-flow" in frame
        assert "FINISHED" in frame and "ready" in frame
        assert "rates (window of" in frame
        assert "in-flight [" in frame
        assert "p95" in frame and "traffic saved" in frame
        assert "\x1b[" not in frame  # --no-color means no ANSI at all

    def test_color_frame_carries_ansi(self):
        d = _driver()
        plane = TelemetryPlane(d)
        d.run()
        assert "\x1b[1m" in render_dashboard(plane.snapshot(), color=True)

    def test_empty_snapshot_renders_starting_state(self):
        frame = render_dashboard({}, color=False)
        assert "STALLED" in frame and "starting" in frame
        assert "n/a" in frame  # rates unknown, never fake zeros

    def test_cmd_top_once_against_live_plane(self, capsys):
        from repro.cli import main

        d = _driver()
        plane = TelemetryPlane(d)
        port = plane.start(0)
        d.run()
        try:
            rc = main(["top", "--port", str(port), "--once", "--no-color"])
        finally:
            plane.stop()
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("repro top")
        assert "policy fvdf-flow" in out

    def test_cmd_top_once_unreachable_exits_nonzero(self, capsys):
        from repro.cli import main

        rc = main(["top", "--url", "http://127.0.0.1:9", "--once"])
        assert rc == 1
        assert "cannot reach" in capsys.readouterr().err


class TestStreamReportIntegration:
    def test_report_window_and_kernel_with_plane(self):
        d = _driver()
        plane = TelemetryPlane(d)
        d.run()
        report = d.telemetry_report(label="t")
        assert report["stream"]["kernel"]
        assert report["window"]["ticks"] == len(plane.window)
        assert report["window"]["rates_per_s"]["flows_admitted"] is not None

    def test_report_window_null_without_plane(self):
        from repro.analysis.report import render_report

        d = _driver()
        d.run()
        report = d.telemetry_report(label="t")
        assert report["window"] is None  # explicit null, never absent
        assert "live window: n/a" in render_report(report)

    def test_render_report_formats_window_rates(self):
        from repro.analysis.report import render_report

        d = _driver()
        TelemetryPlane(d)
        d.run()
        text = render_report(d.telemetry_report(label="t"))
        assert "live window (" in text
        assert "admitted" in text and "tick p95" in text
