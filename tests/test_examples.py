"""Smoke tests: every shipped example runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

CASES = [
    ("quickstart.py", [], "CCT speedup of FVDF"),
    ("motivating_example.py", [], "Baselines match the paper exactly"),
    ("facebook_trace_replay.py", ["--coflows", "8", "--ports", "12"],
     "CCT speedup of FVDF"),
    ("hibench_cluster.py", ["--jobs", "4"], "Table VII"),
    ("swallow_api_shuffle.py", [], "traffic reduction"),
    ("sparklite_wordcount.py", [], "verified correct"),
    ("deadline_guarantees.py", [], "admitted met their deadline"),
]


@pytest.mark.parametrize("script,args,marker", CASES,
                         ids=[c[0] for c in CASES])
def test_example_runs(script, args, marker):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker in proc.stdout


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == {c[0] for c in CASES}
