"""Flow-size distributions and the Fig. 1 calibration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.distributions import (
    ConstantSize,
    LogNormalSizes,
    MixtureSizes,
    TruncatedPareto,
    byte_share_above,
    fig1_distribution,
    spark_flow_sizes,
)
from repro.units import GB, KB, MB


class TestTruncatedPareto:
    def test_samples_in_range(self, rng):
        d = TruncatedPareto(xm=1.0, alpha=0.5, cap=100.0)
        x = d.sample(rng, 10_000)
        assert x.min() >= 1.0
        assert x.max() <= 100.0

    def test_cdf_monotone_and_bounded(self):
        d = TruncatedPareto(xm=1.0, alpha=0.5, cap=100.0)
        pts = np.linspace(0.5, 120, 50)
        c = d.cdf(pts)
        assert np.all(np.diff(c) >= -1e-12)
        assert c[0] == 0.0 and c[-1] == 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TruncatedPareto(xm=0, alpha=1, cap=10)
        with pytest.raises(ConfigurationError):
            TruncatedPareto(xm=5, alpha=1, cap=5)


class TestFig1Calibration:
    def test_flow_count_share(self, rng):
        """Fig. 1(a): ~89.5% of flows smaller than 10 GB."""
        d = fig1_distribution()
        x = d.sample(rng, 200_000)
        frac = (x < 10 * GB).mean()
        assert frac == pytest.approx(0.895, abs=0.02)

    def test_byte_share_of_elephants(self, rng):
        """Fig. 1(b): >93% of traffic bytes from flows larger than 10 GB."""
        d = fig1_distribution()
        x = d.sample(rng, 200_000)
        assert byte_share_above(x, 10 * GB) > 0.90

    def test_body_location(self, rng):
        """Most flows scattered in [10 MB, 10 GB] as the paper observes."""
        d = fig1_distribution()
        x = d.sample(rng, 50_000)
        assert ((x >= 10 * MB) & (x <= 10 * GB)).mean() > 0.85


class TestLogNormal:
    def test_median(self, rng):
        d = LogNormalSizes(median=100.0, sigma=1.0)
        x = d.sample(rng, 50_000)
        assert np.median(x) == pytest.approx(100.0, rel=0.05)

    def test_clipping(self, rng):
        d = LogNormalSizes(median=100.0, sigma=2.0, lo=10.0, hi=1000.0)
        x = d.sample(rng, 10_000)
        assert x.min() >= 10.0 and x.max() <= 1000.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalSizes(median=-1.0)
        with pytest.raises(ConfigurationError):
            LogNormalSizes(median=1.0, lo=5.0, hi=2.0)


class TestMixture:
    def test_draws_from_both(self, rng):
        m = MixtureSizes([ConstantSize(1.0), ConstantSize(100.0)], [0.5, 0.5])
        x = m.sample(rng, 1000)
        assert set(np.unique(x)) == {1.0, 100.0}
        assert abs((x == 1.0).mean() - 0.5) < 0.1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MixtureSizes([], [])
        with pytest.raises(ConfigurationError):
            MixtureSizes([ConstantSize(1.0)], [0.0])


def test_spark_flow_sizes_scale(rng):
    x = spark_flow_sizes().sample(rng, 20_000)
    assert np.median(x) == pytest.approx(200 * KB, rel=0.1)
    assert x.min() >= 1 * KB and x.max() <= 64 * MB


def test_byte_share_empty():
    assert byte_share_above(np.array([]), 1.0) == 0.0
