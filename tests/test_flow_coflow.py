"""Flow and Coflow data-model behaviour."""

import pytest

from repro.core.coflow import Coflow, total_size
from repro.core.flow import Flow, FlowResult
from repro.errors import ConfigurationError


def test_flow_validation_rejects_bad_sizes():
    with pytest.raises(ConfigurationError):
        Flow(src=0, dst=1, size=0)
    with pytest.raises(ConfigurationError):
        Flow(src=0, dst=1, size=-5)


def test_flow_validation_rejects_negative_ports_and_arrival():
    with pytest.raises(ConfigurationError):
        Flow(src=-1, dst=0, size=1)
    with pytest.raises(ConfigurationError):
        Flow(src=0, dst=-2, size=1)
    with pytest.raises(ConfigurationError):
        Flow(src=0, dst=0, size=1, arrival=-1.0)


def test_flow_ids_are_unique_by_default():
    a, b = Flow(0, 1, 1.0), Flow(0, 1, 1.0)
    assert a.flow_id != b.flow_id


def test_coflow_stamps_members():
    flows = [Flow(0, 1, 10.0), Flow(1, 2, 20.0)]
    c = Coflow(flows, arrival=3.5, label="shuffle")
    assert all(f.coflow_id == c.coflow_id for f in flows)
    assert all(f.arrival == 3.5 for f in flows)


def test_coflow_requires_flows():
    with pytest.raises(ConfigurationError):
        Coflow([])


def test_coflow_aggregates():
    c = Coflow([Flow(0, 1, 10.0), Flow(0, 2, 30.0), Flow(1, 2, 20.0)])
    assert c.size == 60.0
    assert c.width == 3
    assert ("in", 0) in c.ports and ("out", 2) in c.ports
    assert len(c) == 3


def test_coflow_bottleneck_load():
    # port 0 carries 40 bytes in; egress 2 carries 50 bytes out.
    c = Coflow([Flow(0, 1, 10.0), Flow(0, 2, 30.0), Flow(1, 2, 20.0)])
    gamma = c.bottleneck_load(ingress_cap=[10.0, 10.0], egress_cap=[10.0, 10.0, 10.0])
    assert gamma == pytest.approx(5.0)  # egress 2: 50 bytes / 10 B/s


def test_total_size():
    c1 = Coflow([Flow(0, 1, 10.0)])
    c2 = Coflow([Flow(0, 1, 15.0)])
    assert total_size([c1, c2]) == 25.0


def test_flow_result_derived_metrics():
    fr = FlowResult(
        flow_id=1, coflow_id=2, src=0, dst=1, size=100.0, arrival=1.0,
        start=1.0, finish=5.0, finish_physical=4.9,
        bytes_sent=60.0, bytes_compressed_in=100.0,
    )
    assert fr.fct == pytest.approx(4.0)
    assert fr.traffic_saved == pytest.approx(40.0)
