"""The streaming scheduler service: sources, driver, checkpoints, cache.

The service regime (:mod:`repro.service`) must be as deterministic as the
batch engine it wraps:

* arrival sources replay identically from a spec, and resume from a
  saved cursor — including with a lookahead coflow buffered — exactly
  where they left off;
* the driver's drain cadence partitions results without changing them,
  backpressure restamps late admissions to "now", and engine memory is
  bounded by the in-flight backlog, not the stream length;
* a mid-stream checkpoint restores to a bit-identical continuation;
* :class:`~repro.runner.ResultCache` round-trips ``ServeSpec`` runs.
"""

import json

import numpy as np
import pytest

from repro.analysis import ExperimentSetup
from repro.core.results import ResultStore, concat_stores
from repro.errors import ReproError
from repro.runner import ResultCache, ServeSpec
from repro.schedulers import make_scheduler
from repro.service import (
    JsonlSource,
    SourceSpec,
    StreamDriver,
    coflow_from_json,
    coflow_to_json,
    load_checkpoint,
    restore_driver,
    run_serve_spec,
)
from repro.traces.distributions import ConstantSize
from repro.units import KB, mbps

SETUP = ExperimentSetup(num_ports=4, bandwidth=mbps(100), slice_len=0.01)

#: Columns that identify a flow's outcome independently of global ids.
FLOW_CONTENT = (
    "src", "dst", "size", "arrival", "start", "finish", "finish_phys",
    "bytes_sent", "comp_in", "comp_out",
)
CF_CONTENT = (
    "cf_arrival", "cf_finish", "cf_finish_phys", "cf_size", "cf_width",
    "cf_bytes_sent",
)


def _spec(**kw):
    kw.setdefault("rate", 40.0)
    kw.setdefault("num_ports", 4)
    kw.setdefault("width", (1, 3))
    kw.setdefault("size_dist", ConstantSize(200 * KB))
    kw.setdefault("seed", 5)
    kw.setdefault("limit", 30)
    return SourceSpec(**kw)


def _driver(spec=None, *, policy="fvdf-flow", **kw):
    spec = spec or _spec()
    sim = SETUP.build_simulator(make_scheduler(policy))
    kw.setdefault("tick", 0.2)
    return StreamDriver(
        sim, spec.build(), setup=SETUP, source_spec=spec, **kw
    )


def _drain_all(source):
    out = []
    while source.peek() is not None:
        out.append(source.pop())
    return out


def _content(store, cols=FLOW_CONTENT):
    return [np.asarray(getattr(store, c)) for c in cols]


def _assert_same_content(a, b, cols=FLOW_CONTENT):
    for name, xa, xb in zip(cols, _content(a, cols), _content(b, cols)):
        assert np.array_equal(xa, xb), f"column {name} differs"


# ------------------------------------------------------------ sources
class TestSyntheticSource:
    def test_replay_is_deterministic(self):
        a = _drain_all(_spec().build())
        b = _drain_all(_spec().build())
        assert len(a) == len(b) == 30
        assert [c.arrival for c in a] == [c.arrival for c in b]
        assert [len(c.flows) for c in a] == [len(c.flows) for c in b]
        assert [f.size for c in a for f in c.flows] == [
            f.size for c in b for f in c.flows
        ]

    @pytest.mark.parametrize("mode", ["steady", "bursty", "diurnal"])
    def test_modes_yield_nondecreasing_bounded_streams(self, mode):
        coflows = _drain_all(_spec(mode=mode, limit=200).build())
        assert len(coflows) == 200
        arrivals = [c.arrival for c in coflows]
        assert arrivals == sorted(arrivals)
        assert arrivals[0] == 0.0
        assert all(1 <= len(c.flows) <= 3 for c in coflows)
        assert all(
            0 <= f.src < 4 and 0 <= f.dst < 4
            for c in coflows for f in c.flows
        )

    def test_bursty_is_burstier_than_steady(self):
        gaps = lambda cs: np.diff([c.arrival for c in cs])  # noqa: E731
        steady = gaps(_drain_all(_spec(mode="steady", limit=400).build()))
        bursty = gaps(_drain_all(_spec(
            mode="bursty", burst_factor=16.0, burst_fraction=0.1, limit=400,
        ).build()))
        # Same mean rate regime, much heavier gap dispersion under bursts.
        assert np.std(bursty) / np.mean(bursty) > np.std(steady) / np.mean(steady)

    def test_seek_resumes_identically(self):
        whole = _drain_all(_spec(limit=40).build())
        src = _spec(limit=40).build()
        first = [src.pop() for _ in range(17)]
        cursor = src.state()
        resumed = _spec(limit=40).build()
        resumed.seek(cursor)
        rest = _drain_all(resumed)
        combined = first + rest
        assert [c.arrival for c in combined] == [c.arrival for c in whole]
        assert [f.size for c in combined for f in c.flows] == [
            f.size for c in whole for f in c.flows
        ]

    def test_state_points_before_buffered_lookahead(self):
        # peek() buffers the next coflow; state() must still describe the
        # cursor *before* it, so a resume regenerates the peeked coflow.
        src = _spec(limit=10).build()
        src.pop()
        peeked = src.peek()  # buffers coflow #2
        cursor = src.state()
        resumed = _spec(limit=10).build()
        resumed.seek(cursor)
        assert resumed.peek() == peeked
        assert [c.arrival for c in _drain_all(resumed)] == [
            c.arrival for c in _drain_all(src)
        ]

    def test_seek_with_buffered_coflow_is_refused(self):
        src = _spec().build()
        src.peek()
        with pytest.raises(ReproError):
            src.seek({"kind": "synthetic"})

    def test_spec_validation(self):
        with pytest.raises(ReproError):
            _spec(rate=0.0)
        with pytest.raises(ReproError):
            _spec(mode="lumpy")
        with pytest.raises(ReproError):
            SourceSpec(kind="jsonl")  # jsonl requires a path


class TestJsonlSource:
    def _write(self, tmp_path, coflows):
        path = tmp_path / "arrivals.jsonl"
        with path.open("w") as fh:
            for cf in coflows:
                fh.write(json.dumps(coflow_to_json(cf)) + "\n\n")
        return path

    def test_coflow_json_roundtrip(self):
        [cf] = _drain_all(_spec(limit=1, compressible_fraction=0.5).build())
        cf.label = "job-7"
        again = coflow_from_json(json.loads(json.dumps(coflow_to_json(cf))))
        assert again.arrival == cf.arrival
        assert again.label == cf.label
        assert [
            (f.src, f.dst, f.size, f.compressible) for f in again.flows
        ] == [(f.src, f.dst, f.size, f.compressible) for f in cf.flows]

    def test_file_replay_matches_origin(self, tmp_path):
        coflows = _drain_all(_spec(limit=12).build())
        src = JsonlSource(str(self._write(tmp_path, coflows)))
        replayed = _drain_all(src)
        assert [c.arrival for c in replayed] == [c.arrival for c in coflows]
        assert [f.size for c in replayed for f in c.flows] == [
            f.size for c in coflows for f in c.flows
        ]

    def test_decreasing_arrivals_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        rows = [
            {"arrival": 1.0, "flows": [{"src": 0, "dst": 1, "size": 10.0}]},
            {"arrival": 0.5, "flows": [{"src": 0, "dst": 1, "size": 10.0}]},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        src = JsonlSource(str(path))
        src.pop()
        with pytest.raises(ReproError):
            src.peek()

    def test_seek_skips_consumed_lines(self, tmp_path):
        coflows = _drain_all(_spec(limit=10).build())
        path = str(self._write(tmp_path, coflows))
        src = JsonlSource(path)
        for _ in range(4):
            src.pop()
        cursor = src.state()
        resumed = JsonlSource(path)
        resumed.seek(cursor)
        assert [c.arrival for c in _drain_all(resumed)] == [
            c.arrival for c in coflows[4:]
        ]


# ------------------------------------------------------------- driver
class TestStreamDriver:
    def test_stream_completes_and_counts_balance(self):
        d = _driver()
        stats = d.run()
        assert stats.coflows_submitted == stats.coflows_done == 30
        assert stats.flows_submitted == stats.flows_done
        assert d.in_flight == 0
        assert not d.sim.pending
        assert stats.avg_fct > 0 and stats.avg_cct >= stats.avg_fct / 10

    def test_drain_cadence_partitions_without_changing_results(self):
        stores = []
        for drain_every in (1, 3):
            d = _driver(drain_every=drain_every)
            d.run()
            stores.append(d.result_store())
        assert stores[0].flow_id.size == stores[1].flow_id.size
        _assert_same_content(stores[0], stores[1])
        _assert_same_content(stores[0], stores[1], CF_CONTENT)

    def test_arrival_gap_longer_than_tick_stays_live(self, tmp_path):
        # Nothing in flight and the next arrival several ticks away: the
        # service must keep advancing its horizon across the idle gap
        # (regression: an idle ``sim.run(until=...)`` used to leave ``now``
        # frozen, so the driver ticked forever without making progress).
        path = tmp_path / "gap.jsonl"
        rows = [
            {"arrival": 0.0, "flows": [{"src": 0, "dst": 1, "size": 10.0}]},
            {"arrival": 5.0, "flows": [{"src": 1, "dst": 0, "size": 10.0}]},
        ]
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        sim = SETUP.build_simulator(make_scheduler("fvdf-flow"))
        d = StreamDriver(sim, JsonlSource(str(path)), tick=0.2, setup=SETUP)
        stats = d.run(max_ticks=100)  # gap needs ~25 ticks; bound the test
        assert stats.coflows_done == 2
        assert sim.now >= 5.0

    def test_backpressure_restamps_late_admissions(self):
        # A 2-flow in-flight bound on a 60-coflow burst forces most
        # arrivals to wait; they must be restamped to admission time.
        d = _driver(_spec(rate=5000.0, width=(1, 1), limit=60),
                    max_in_flight=2)
        stats = d.run()
        assert stats.restamped > 0
        assert stats.flows_done == 60
        store = d.result_store()
        assert np.all(np.asarray(store.start) >= np.asarray(store.arrival))

    def test_memory_stays_backlog_bounded(self):
        d = _driver(_spec(rate=200.0, limit=300), max_in_flight=20)
        stats = d.run()
        assert stats.flows_done == stats.flows_submitted
        assert stats.peak_live_rows <= 4 * 20  # slack for whole-slot drain
        assert stats.peak_in_flight <= 20 + 3  # one coflow may overshoot

    def test_spill_dir_writes_loadable_shards(self, tmp_path):
        d = _driver(spill_dir=tmp_path, keep_shards=False, drain_every=2)
        stats = d.run()
        assert d.shard_paths and all(p.exists() for p in d.shard_paths)
        loaded = concat_stores(
            [ResultStore.load_npz(p) for p in d.shard_paths]
        )
        assert loaded.flow_id.size == stats.flows_done
        with pytest.raises(ReproError):
            d.result_store()  # spilled runs hold no in-memory shards

    def test_max_ticks_pauses_and_resumes(self):
        whole = _driver()
        whole.run()
        paused = _driver()
        paused.run(max_ticks=3)
        assert paused.stats.ticks == 3
        paused.run()
        _assert_same_content(whole.result_store(), paused.result_store())


# ----------------------------------------------- block-columnar admission
class TestBlockAdmission:
    """``block_admission=True`` (columnar pop_block → submit_block) must be
    bit-identical to the legacy pop-one-object loop — including the global
    flow/coflow id draws, which both paths make in the same order."""

    def _run_pair(self, spec=None, source_path=None, **kw):
        from repro.core.flow import flow_id_watermark

        outs = []
        for block in (True, False):
            base = flow_id_watermark()
            if source_path is not None:
                sim = SETUP.build_simulator(make_scheduler("fvdf-flow"))
                d = StreamDriver(
                    sim, JsonlSource(str(source_path)), tick=0.2,
                    setup=SETUP, block_admission=block, **kw
                )
            else:
                d = _driver(spec, block_admission=block, **kw)
            stats = d.run()
            outs.append((d, stats, base))
        return outs

    def _assert_identical(self, outs):
        (da, sa, base_a), (db, sb, base_b) = outs
        assert sa.coflows_submitted == sb.coflows_submitted
        assert sa.flows_submitted == sb.flows_submitted
        assert sa.restamped == sb.restamped
        assert sa.ticks == sb.ticks
        ra, rb = da.result_store(), db.result_store()
        _assert_same_content(ra, rb)
        _assert_same_content(ra, rb, CF_CONTENT)
        assert list(ra.cf_label) == list(rb.cf_label)
        # same id draw order: ids differ only by the watermark offset
        assert np.array_equal(
            np.asarray(ra.flow_id) - base_a, np.asarray(rb.flow_id) - base_b
        )

    @pytest.mark.parametrize("mode", ["steady", "bursty"])
    def test_synthetic_equivalence(self, mode):
        self._assert_identical(self._run_pair(_spec(mode=mode)))

    def test_equivalence_under_backpressure_restamps(self):
        outs = self._run_pair(
            _spec(rate=5000.0, width=(1, 1), limit=60), max_in_flight=2
        )
        assert outs[0][1].restamped > 0
        self._assert_identical(outs)

    def test_jsonl_equivalence_with_overrides_and_deadlines(self, tmp_path):
        coflows = _drain_all(_spec(limit=12, compressible_fraction=0.6).build())
        rows = []
        for i, cf in enumerate(coflows):
            rec = coflow_to_json(cf)
            if i % 3 == 0:
                rec["deadline"] = 2.0
                rec["flows"][0]["ratio_override"] = 0.4
            rows.append(rec)
        path = tmp_path / "mixed.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in rows))
        self._assert_identical(self._run_pair(source_path=path))

    def test_pop_block_base_fallback_matches_override(self):
        """The generic object-popping pop_block (what a custom source
        inherits) builds the same block as the columnar overrides."""
        from repro.service.arrivals import ArrivalSource

        a = _spec(limit=12).build()
        b = _spec(limit=12).build()
        blk_fast = a.pop_block(1e9)
        blk_base = ArrivalSource.pop_block(b, 1e9)
        assert blk_fast.n_coflows == blk_base.n_coflows == 12
        for col in ("arrival", "width", "src", "dst", "size",
                    "compressible", "override", "flow_arrival"):
            assert np.array_equal(
                getattr(blk_fast, col), getattr(blk_base, col)
            ), f"column {col} differs"
        assert blk_fast.label == blk_base.label
        # the base path materialized objects; the fast path did not
        assert blk_base.coflows is not None
        assert blk_fast.coflows is None


# -------------------------------------------------------- checkpointing
class TestCheckpoint:
    def test_mid_stream_roundtrip_is_bit_identical(self, tmp_path):
        whole = _driver()
        whole.run()

        first = _driver()
        first.run(max_ticks=4)
        ck = first.checkpoint(tmp_path / "serve.ckpt.npz")
        pre = list(first.shards)

        second = restore_driver(ck)
        second.run()
        combined = concat_stores(pre + second.shards)
        _assert_same_content(whole.result_store(), combined)
        _assert_same_content(
            whole.result_store(), combined, CF_CONTENT
        )
        assert list(whole.result_store().cf_label) == list(
            combined.cf_label
        )

    def test_checkpoint_carries_driver_and_source_state(self, tmp_path):
        d = _driver()
        d.run(max_ticks=4)
        ck = d.checkpoint(tmp_path / "serve.ckpt.npz")
        data = load_checkpoint(ck)
        assert data["schema"] == "repro-checkpoint-v1"
        assert data["driver_state"]["stats"]["ticks"] == 4
        assert data["source_spec"] == d.source_spec
        assert data["source_state"]["count"] >= 0

    def test_periodic_checkpoints_overwrite_latest(self, tmp_path):
        path = tmp_path / "latest.npz"
        d = _driver(checkpoint_path=path, checkpoint_every_ticks=2)
        stats = d.run()
        assert path.exists()
        assert stats.checkpoints >= 2

    def test_restored_stream_counts_continue(self, tmp_path):
        first = _driver()
        first.run(max_ticks=4)
        done_before = first.stats.flows_done
        ck = first.checkpoint(tmp_path / "c.npz")
        second = restore_driver(ck)
        assert second.stats.flows_done == done_before
        stats = second.run()
        assert stats.coflows_done == 30


# ------------------------------------------------------- spec and cache
class TestServeSpecCache:
    def _serve_spec(self, **kw):
        kw.setdefault("policy", "fvdf-flow")
        kw.setdefault("source", _spec())
        kw.setdefault("setup", SETUP)
        kw.setdefault("tick", 0.2)
        return ServeSpec(**kw)

    def test_digest_stable_and_shape_sensitive(self):
        assert self._serve_spec().digest() == self._serve_spec().digest()
        assert self._serve_spec().digest() is not None
        base = self._serve_spec().digest()
        assert self._serve_spec(tick=0.5).digest() != base
        assert self._serve_spec(max_in_flight=7).digest() != base
        assert self._serve_spec(source=_spec(seed=6)).digest() != base

    def test_live_source_is_uncacheable(self):
        spec = self._serve_spec(source=_spec().build(), key="live")
        assert spec.digest() is None

    def test_cache_roundtrip(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        spec = self._serve_spec()
        cold, was_cached = run_serve_spec(spec, cache)
        assert not was_cached
        warm, was_cached = run_serve_spec(spec, cache)
        assert was_cached
        assert warm == cold
        assert cold.avg_cct > 0
