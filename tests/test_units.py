"""Unit-helper sanity."""

import pytest

from repro import units


def test_data_prefixes_are_binary():
    assert units.KB == 1024
    assert units.MB == 1024**2
    assert units.GB == 1024**3
    assert units.TB == 1024**4


def test_rate_prefixes_are_decimal_bits():
    assert units.mbps(8) == 1e6  # 8 Mbit/s == 1e6 bytes/s
    assert units.gbps(1) == 1e9 / 8


def test_gbps_is_thousand_mbps():
    assert units.gbps(1) == pytest.approx(units.mbps(1000))


def test_bytes_to_human():
    assert units.bytes_to_human(2.4 * units.GB) == "2.40 GB"
    assert units.bytes_to_human(512) == "512 B"
    assert units.bytes_to_human(1536) == "1.50 KB"


def test_rate_to_human():
    assert units.rate_to_human(units.gbps(1)) == "1.00 Gbps"
    assert units.rate_to_human(units.mbps(100)) == "100.00 Mbps"


def test_seconds_to_human():
    assert units.seconds_to_human(0.23) == "230.0 ms"
    assert units.seconds_to_human(96) == "1.60 min"
    assert units.seconds_to_human(7200) == "2.00 h"
    assert units.seconds_to_human(2.5) == "2.50 s"
