"""Dynamic port capacity: scheduled bandwidth changes mid-run."""

import numpy as np
import pytest

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.fabric.ports import PortSet
from repro.schedulers import make_scheduler


def make_sim(bandwidth=1.0, scheduler="sebf"):
    return SliceSimulator(
        BigSwitch(2, bandwidth), make_scheduler(scheduler), slice_len=0.01
    )


class TestPortSetUpdate:
    def test_set_capacity(self):
        ps = PortSet(2, 1.0)
        ps.set_capacity(1, 5.0)
        assert list(ps.capacity) == [1.0, 5.0]

    def test_validation(self):
        ps = PortSet(2, 1.0)
        with pytest.raises(ConfigurationError):
            ps.set_capacity(5, 1.0)
        with pytest.raises(ConfigurationError):
            ps.set_capacity(0, 0.0)

    def test_stays_readonly(self):
        ps = PortSet(1, 1.0)
        ps.set_capacity(0, 2.0)
        with pytest.raises(ValueError):
            ps.capacity[0] = 9.0


class TestScheduledChanges:
    def test_slowdown_delays_completion(self):
        """8 bytes at 1 B/s, but the link drops to 0.5 B/s at t=4:
        4 bytes fast + 4 bytes slow = 4 + 8 = 12 s."""
        sim = make_sim()
        sim.submit(Coflow([Flow(0, 0, 8.0)]))
        sim.schedule_capacity_change(4.0, "ingress", 0, 0.5)
        sim.schedule_capacity_change(4.0, "egress", 0, 0.5)
        res = sim.run()
        assert res.flow_results[0].fct == pytest.approx(12.0, abs=0.05)

    def test_speedup_accelerates_completion(self):
        sim = make_sim()
        sim.submit(Coflow([Flow(0, 0, 8.0)]))
        sim.schedule_capacity_change(4.0, "ingress", 0, 4.0)
        sim.schedule_capacity_change(4.0, "egress", 0, 4.0)
        res = sim.run()
        # 4 bytes at 1 B/s, then 4 bytes at 4 B/s -> 5 s.
        assert res.flow_results[0].fct == pytest.approx(5.0, abs=0.05)

    def test_change_applies_while_idle(self):
        """A capacity change during an idle gap affects later arrivals."""
        sim = make_sim()
        sim.schedule_capacity_change(1.0, "egress", 0, 0.5)
        sim.submit(Coflow([Flow(0, 0, 2.0)], arrival=5.0))
        res = sim.run()
        assert res.flow_results[0].fct == pytest.approx(4.0, abs=0.05)

    def test_validation(self):
        sim = make_sim()
        with pytest.raises(ConfigurationError, match="side"):
            sim.schedule_capacity_change(1.0, "uplink", 0, 1.0)
        with pytest.raises(ConfigurationError, match="positive"):
            sim.schedule_capacity_change(1.0, "ingress", 0, 0.0)
        sim.submit(Coflow([Flow(0, 0, 1.0)]))
        sim.run()
        with pytest.raises(ConfigurationError, match="past"):
            sim.schedule_capacity_change(0.0, "ingress", 0, 1.0)

    def test_fvdf_reacts_to_bandwidth_drop(self):
        """Eq. 3 flips when the link thins: FVDF starts compressing after
        the capacity drop even though it didn't before."""
        from repro.compression.codecs import Codec
        from repro.compression.engine import CompressionEngine

        eng = CompressionEngine(
            Codec("t", speed=4.0, decompression_speed=16.0, ratio=0.5),
            size_dependent=False,
        )
        # disposal = 2.0: loses against B=3.0, wins against B=1.0.
        sim = SliceSimulator(
            BigSwitch(1, 3.0), make_scheduler("fvdf"), slice_len=0.01,
            compression=eng,
        )
        sim.submit(Coflow([Flow(0, 0, 30.0)]))
        sim.schedule_capacity_change(2.0, "ingress", 0, 1.0)
        sim.schedule_capacity_change(2.0, "egress", 0, 1.0)
        res = sim.run()
        fr = res.flow_results[0]
        # nothing compressed before t=2 (6 bytes sent raw), the rest did.
        assert fr.bytes_compressed_in > 0
        assert fr.bytes_sent < fr.size

    def test_multiple_changes_apply_in_order(self):
        sim = make_sim()
        sim.submit(Coflow([Flow(0, 0, 6.0)]))
        for side in ("ingress", "egress"):
            sim.schedule_capacity_change(2.0, side, 0, 2.0)
            sim.schedule_capacity_change(3.0, side, 0, 1.0)
        res = sim.run()
        # 2 bytes @1 + 2 bytes @2 (t=2..3) + 2 bytes @1 -> finish at 5.
        assert res.flow_results[0].fct == pytest.approx(5.0, abs=0.05)
