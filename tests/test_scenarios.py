"""The canonical scenario helpers (Fig. 3/4 workload construction)."""

import pytest

from repro.scenarios import (
    FIG4_PAPER_NUMBERS,
    motivating_compression_engine,
    motivating_example,
    run_motivating_example,
)
from repro.schedulers import make_scheduler


class TestConstruction:
    def test_port_assignment_matches_design_doc(self):
        _, (c1, c2) = motivating_example()
        by_id = {f.flow_id: f for c in (c1, c2) for f in c.flows}
        # flow ids encode the interleaved FIFO order f1,f5,f2,f4,f3.
        f1, f5, f2, f4, f3 = (by_id[i] for i in range(5))
        assert (f1.src, f1.dst, f1.size) == (0, 0, 4)
        assert (f2.src, f2.dst, f2.size) == (1, 1, 4)
        assert (f3.src, f3.dst, f3.size) == (2, 2, 2)
        assert (f4.src, f4.dst, f4.size) == (0, 0, 2)
        assert (f5.src, f5.dst, f5.size) == (2, 2, 3)

    def test_bandwidth_scaling_scales_sizes(self):
        _, coflows = motivating_example(bandwidth=7.0)
        assert sum(c.size for c in coflows) == 15 * 7.0

    def test_compression_engine_satisfies_eq3(self):
        eng = motivating_compression_engine()
        # R(1-xi) = 4 * 0.5241 > B = 1: compression pays.
        assert eng.disposal_speed(4.0) > 1.0
        assert eng.ratio(4.0) == pytest.approx(0.4759)

    def test_paper_numbers_table_complete(self):
        assert set(FIG4_PAPER_NUMBERS) >= {"pff", "wss", "fifo", "pfp",
                                           "sebf", "fvdf"}


class TestRunHelper:
    def test_non_compressing_policy_gets_no_engine(self):
        res = run_motivating_example(make_scheduler("sebf"))
        assert res.traffic_reduction == 0.0

    def test_compressing_policy_gets_engine(self):
        res = run_motivating_example(make_scheduler("fvdf"))
        assert res.traffic_reduction > 0.0

    def test_core_count_changes_compression_but_stays_competitive(self):
        """More cores let more flows compress simultaneously.  The FVDF
        heuristic is not monotone in cores (exclusive β can delay a flow
        that would rather transmit), but every configuration must stay
        ahead of SEBF on this example."""
        sebf = run_motivating_example(make_scheduler("sebf"))
        for cores in (1, 2, 4):
            res = run_motivating_example(make_scheduler("fvdf"), cores_per_node=cores)
            assert res.avg_cct < sebf.avg_cct, cores
            assert res.traffic_reduction > 0.0, cores
