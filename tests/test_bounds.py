"""Lower bounds: validity against every scheduler, tightness where known."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ExperimentSetup, run_policy
from repro.compression.codecs import Codec
from repro.compression.engine import CompressionEngine
from repro.core.bounds import (
    avg_cct_lower_bound,
    isolation_gamma,
    makespan_lower_bound,
    optimality_gap,
)
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch


class TestIsolationGamma:
    def test_single_flow(self):
        fab = BigSwitch(2, bandwidth=2.0)
        c = Coflow([Flow(0, 1, 6.0)])
        assert isolation_gamma(c, fab) == pytest.approx(3.0)

    def test_bottleneck_port(self):
        fab = BigSwitch(3, bandwidth=1.0)
        # two flows into egress 2: it is the bottleneck.
        c = Coflow([Flow(0, 2, 3.0), Flow(1, 2, 3.0)])
        assert isolation_gamma(c, fab) == pytest.approx(6.0)

    def test_compression_shrinks_bound(self):
        fab = BigSwitch(2, bandwidth=1.0)
        eng = CompressionEngine(
            Codec("t", speed=10.0, decompression_speed=40.0, ratio=0.5),
            size_dependent=False,
        )
        c = Coflow([Flow(0, 1, 4.0)])
        assert isolation_gamma(c, fab, eng) == pytest.approx(2.0)

    def test_incompressible_flow_not_shrunk(self):
        fab = BigSwitch(2, bandwidth=1.0)
        eng = CompressionEngine(
            Codec("t", speed=10.0, decompression_speed=40.0, ratio=0.5),
            size_dependent=False,
        )
        c = Coflow([Flow(0, 1, 4.0, compressible=False)])
        assert isolation_gamma(c, fab, eng) == pytest.approx(4.0)

    def test_ratio_override_respected(self):
        fab = BigSwitch(2, bandwidth=1.0)
        eng = CompressionEngine("lz4", size_dependent=False)
        c = Coflow([Flow(0, 1, 4.0, ratio_override=0.25)])
        assert isolation_gamma(c, fab, eng) == pytest.approx(1.0)


class TestWorkloadBounds:
    def test_avg_cct_bound_requires_coflows(self):
        with pytest.raises(ConfigurationError):
            avg_cct_lower_bound([], BigSwitch(1, 1.0))

    def test_makespan_bound_accounts_for_arrivals(self):
        fab = BigSwitch(1, bandwidth=1.0)
        late = Coflow([Flow(0, 0, 2.0)], arrival=10.0)
        assert makespan_lower_bound([late], fab) == pytest.approx(12.0)

    def test_makespan_bound_sums_port_load(self):
        fab = BigSwitch(2, bandwidth=1.0)
        coflows = [Coflow([Flow(0, 0, 3.0)]), Coflow([Flow(0, 1, 3.0)])]
        # ingress 0 must move 6 bytes.
        assert makespan_lower_bound(coflows, fab) == pytest.approx(6.0)

    def test_gap(self):
        assert optimality_gap(6.0, 4.0) == pytest.approx(1.5)
        with pytest.raises(ConfigurationError):
            optimality_gap(1.0, 0.0)

    def test_sebf_is_tight_on_single_coflow(self):
        """One coflow alone: SEBF achieves exactly the isolation bound."""
        fab = BigSwitch(3, bandwidth=1.0)
        c = Coflow([Flow(0, 0, 4.0), Flow(1, 1, 2.0)])
        res = run_policy("sebf", [c], ExperimentSetup(num_ports=3, bandwidth=1.0))
        bound = avg_cct_lower_bound([c], fab)
        assert optimality_gap(res.avg_cct, bound) == pytest.approx(1.0, abs=0.01)


@st.composite
def workloads(draw):
    coflows = []
    t = 0.0
    for _ in range(draw(st.integers(1, 5))):
        flows = [
            Flow(draw(st.integers(0, 2)), draw(st.integers(0, 2)),
                 draw(st.floats(0.1, 10.0)))
            for _ in range(draw(st.integers(1, 3)))
        ]
        coflows.append(Coflow(flows, arrival=t))
        t += draw(st.floats(0.0, 2.0))
    return coflows


@given(workloads(), st.sampled_from(["fifo", "fair", "sebf", "fvdf", "dclas"]))
@settings(max_examples=80, deadline=None)
def test_no_schedule_beats_the_bounds(coflows, policy):
    fab = BigSwitch(3, bandwidth=1.0)
    setup = ExperimentSetup(num_ports=3, bandwidth=1.0, slice_len=0.05)
    res = run_policy(policy, coflows, setup)
    compression = None
    if policy == "fvdf":
        # FVDF compressed: compare against the compression-adjusted bound.
        from repro.compression.engine import CompressionEngine

        compression = CompressionEngine("lz4")
    tol = 1 + 1e-6
    assert res.avg_cct * tol >= avg_cct_lower_bound(coflows, fab, compression)
    assert res.makespan * tol + 0.05 >= makespan_lower_bound(coflows, fab, compression)