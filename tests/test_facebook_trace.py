"""Facebook coflow-benchmark trace format: parse, write, synthesise."""

import io

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.facebook import (
    FacebookTrace,
    read_facebook_trace,
    synthesize_facebook_like,
    write_facebook_trace,
)
from repro.units import MB

SAMPLE = """\
4 2
1 0 2 0 1 1 2:10
2 500 1 3 2 0:4 1:6
"""


class TestRead:
    def test_parses_sample(self):
        tr = read_facebook_trace(io.StringIO(SAMPLE))
        assert tr.num_ports == 4
        assert len(tr.coflows) == 2
        c1, c2 = tr.coflows
        # c1: 2 mappers x 1 reducer -> 2 flows of 5 MB each
        assert c1.width == 2
        assert all(f.size == pytest.approx(5 * MB) for f in c1.flows)
        assert {f.src for f in c1.flows} == {0, 1}
        assert {f.dst for f in c1.flows} == {2}
        assert c1.arrival == 0.0
        # c2: 1 mapper x 2 reducers, arrival 0.5 s
        assert c2.arrival == pytest.approx(0.5)
        assert sorted(f.size / MB for f in c2.flows) == [4.0, 6.0]

    def test_sorted_by_arrival(self):
        swapped = "4 2\n2 500 1 3 1 0:4\n1 0 1 0 1 1:2\n"
        tr = read_facebook_trace(io.StringIO(swapped))
        assert [c.arrival for c in tr.coflows] == [0.0, 0.5]

    def test_skips_blank_and_comment_lines(self):
        tr = read_facebook_trace(io.StringIO("1 1\n\n# comment\n1 0 1 0 1 0:1\n"))
        assert len(tr.coflows) == 1

    @pytest.mark.parametrize(
        "text,msg",
        [
            ("x y\n", "bad header"),
            ("1\n", "bad header"),
            ("1 2\n1 0 1 0 1 0:1\n", "declares 2"),
            ("1 1\n1 0 1 0 1 0:-3\n", "non-positive"),
            ("2 1\n1 0 1 5 1 0:1\n", "out of range"),
            ("1 1\n1 0 1 0 2 0:1\n", "malformed"),
            ("1 1\n1 0 1 0 1 zebra\n", "malformed"),
        ],
    )
    def test_rejects_malformed(self, text, msg):
        with pytest.raises(TraceFormatError, match=msg):
            read_facebook_trace(io.StringIO(text))


class TestRoundTrip:
    def test_write_then_read(self, rng, tmp_path):
        tr = synthesize_facebook_like(rng, num_coflows=30, num_ports=20)
        path = tmp_path / "trace.txt"
        write_facebook_trace(tr, path)
        back = read_facebook_trace(path)
        assert back.num_ports == tr.num_ports
        assert len(back.coflows) == len(tr.coflows)
        # total bytes preserved (up to MB formatting precision)
        assert back.total_bytes == pytest.approx(tr.total_bytes, rel=1e-4)
        # per-coflow structure preserved
        for a, b in zip(tr.coflows, back.coflows):
            assert a.width == b.width
            assert a.arrival == pytest.approx(b.arrival, abs=1e-3)


class TestSynthesize:
    def test_shape(self, rng):
        tr = synthesize_facebook_like(rng, num_coflows=50, num_ports=30)
        assert len(tr.coflows) == 50
        assert tr.num_flows >= 50
        for c in tr.coflows:
            for f in c.flows:
                assert 0 <= f.src < 30 and 0 <= f.dst < 30

    def test_width_skew(self, rng):
        """Most coflows are narrow; some are wide (the FB trace's skew)."""
        tr = synthesize_facebook_like(rng, num_coflows=300, num_ports=100)
        widths = np.array([c.width for c in tr.coflows])
        assert np.median(widths) <= 4
        assert widths.max() >= 16

    def test_trace_summary(self, rng):
        from repro.traces.facebook import trace_summary

        tr = synthesize_facebook_like(rng, num_coflows=40, num_ports=30)
        s = trace_summary(tr)
        assert s["num_coflows"] == 40
        assert s["num_flows"] == tr.num_flows
        assert s["total_bytes"] == pytest.approx(tr.total_bytes)
        assert sum(s["bins"].values()) == 40
        assert s["max_width"] >= s["median_width"]

    def test_replayable_in_simulator(self, rng):
        from repro.core.simulator import SliceSimulator
        from repro.fabric.bigswitch import BigSwitch
        from repro.schedulers import make_scheduler

        tr = synthesize_facebook_like(rng, num_coflows=10, num_ports=10,
                                      arrival_rate=1.0, mean_reducer_mb=1.0)
        sim = SliceSimulator(
            BigSwitch(tr.num_ports, bandwidth=10 * MB),
            make_scheduler("sebf"),
            slice_len=0.01,
        )
        sim.submit_many(tr.coflows)
        res = sim.run()
        assert len(res.coflow_results) == 10
