"""The experiment registry stays in sync with the benchmark files."""

from pathlib import Path

from repro.experiments import EXPERIMENTS, get_experiment

BENCH_DIR = Path(__file__).parent.parent / "benchmarks"


def test_every_registered_bench_exists():
    for exp in EXPERIMENTS.values():
        assert (BENCH_DIR / exp.bench).is_file(), exp.exp_id


def test_every_bench_file_is_registered():
    on_disk = {p.name for p in BENCH_DIR.glob("bench_*.py")}
    registered = {e.bench for e in EXPERIMENTS.values()}
    assert on_disk == registered


def test_lookup():
    exp = get_experiment("fig4")
    assert "Motivating" in exp.title
    assert exp.bench.startswith("bench_fig4")


def test_all_paper_artifacts_covered():
    """Every evaluation table/figure of the paper has an entry."""
    ids = set(EXPERIMENTS)
    for required in ["fig1", "fig2", "table1", "table2", "table3", "fig4",
                     "fig6a", "fig6b", "fig6c", "fig6d", "fig6e", "fig6f",
                     "table5", "table6", "fig7a", "fig7b+table7", "table8",
                     "fig7c"]:
        assert required in ids, required
