"""Two-tier oversubscribed fabric (extension)."""

import numpy as np
import pytest

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError, SchedulingError
from repro.fabric import TwoTierFabric
from repro.schedulers import make_scheduler


def fabric(**kw):
    base = dict(num_racks=2, hosts_per_rack=2, bandwidth=1.0, uplink_bandwidth=1.0)
    base.update(kw)
    return TwoTierFabric(**base)


class TestConstruction:
    def test_ports_and_racks(self):
        f = fabric()
        assert f.num_ingress == 4
        assert list(f.rack_of(np.array([0, 1, 2, 3]))) == [0, 0, 1, 1]

    def test_oversubscription_ratio(self):
        f = fabric(hosts_per_rack=4, bandwidth=1.0, uplink_bandwidth=2.0)
        assert f.oversubscription == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TwoTierFabric(0, 2, 1.0, 1.0)
        with pytest.raises(ConfigurationError):
            TwoTierFabric(2, 2, 1.0, 0.0)


class TestFeasibility:
    def test_intra_rack_flows_skip_uplinks(self):
        f = fabric(uplink_bandwidth=0.1)
        # hosts 0 -> 1 stay inside rack 0: full host rate is fine.
        f.check_feasible(np.array([0]), np.array([1]), np.array([1.0]))

    def test_inter_rack_flows_capped_by_uplink(self):
        f = fabric(uplink_bandwidth=0.5)
        with pytest.raises(SchedulingError, match="uplink"):
            f.check_feasible(np.array([0]), np.array([2]), np.array([0.8]))

    def test_downlink_shared_by_destination_rack(self):
        f = fabric(uplink_bandwidth=1.0)
        # two flows from different racks... both into rack 1: downlink sums.
        src = np.array([0, 1])
        dst = np.array([2, 3])
        with pytest.raises(SchedulingError, match="uplink|downlink"):
            f.check_feasible(src, dst, np.array([0.7, 0.7]))

    def test_flow_link_cap_reflects_uplink(self):
        f = fabric(uplink_bandwidth=0.25)
        caps = f.flow_link_cap(np.array([0, 0]), np.array([1, 2]))
        assert caps[0] == pytest.approx(1.0)  # intra-rack
        assert caps[1] == pytest.approx(0.25)  # inter-rack via thin uplink

    def test_fresh_extra_groups(self):
        f = fabric()
        extra = f.fresh_extra(np.array([0, 0]), np.array([1, 3]))
        (up, up_caps), (down, down_caps) = extra
        assert list(up) == [-1, 0]
        assert list(down) == [-1, 1]
        up_caps[0] = 0.0  # writable copy
        assert f.uplink.capacity[0] == 1.0


class TestSchedulingOnTwoTier:
    def run(self, scheduler_name, coflows, **fkw):
        f = fabric(**fkw)
        sim = SliceSimulator(f, make_scheduler(scheduler_name), slice_len=0.01)
        sim.submit_many(coflows)
        return sim.run()

    @pytest.mark.parametrize(
        "name", ["fifo", "fair", "srtf", "wss", "sebf", "sebf-madd", "scf",
                 "dclas", "fvdf"]
    )
    def test_policies_respect_uplinks(self, name):
        """Every policy completes an inter-rack workload on a thin uplink
        without tripping the engine's feasibility validation."""
        coflows = [
            Coflow([Flow(0, 2, 1.0), Flow(1, 3, 1.0)], arrival=0.0),
            Coflow([Flow(0, 1, 1.0)], arrival=0.0),  # intra-rack
        ]
        res = self.run(name, coflows, uplink_bandwidth=0.5)
        assert len(res.coflow_results) == 2

    def test_uplink_slows_inter_rack_traffic(self):
        inter_a = [Coflow([Flow(0, 2, 4.0)])]
        inter_b = [Coflow([Flow(0, 2, 4.0)])]
        slow = self.run("sebf", inter_a, uplink_bandwidth=0.5)
        fast = self.run("sebf", inter_b, uplink_bandwidth=2.0)
        assert slow.avg_cct == pytest.approx(8.0, abs=0.05)
        assert fast.avg_cct == pytest.approx(4.0, abs=0.05)

    def test_intra_rack_unaffected_by_uplink(self):
        coflows = [Coflow([Flow(0, 1, 4.0)])]
        res = self.run("sebf", coflows, uplink_bandwidth=0.01)
        assert res.avg_cct == pytest.approx(4.0, abs=0.05)

    def test_maxmin_shares_uplink(self):
        # two inter-rack flows from different hosts share one 1.0 uplink.
        coflows = [
            Coflow([Flow(0, 2, 2.0)]),
            Coflow([Flow(1, 3, 2.0)]),
        ]
        res = self.run("fair", coflows, uplink_bandwidth=1.0)
        # each gets 0.5 through the uplink: both finish at ~4.
        for c in res.coflow_results:
            assert c.cct == pytest.approx(4.0, abs=0.05)

    def test_fvdf_compresses_through_thin_uplink(self):
        """Oversubscription makes Eq. 3 easier to satisfy: FVDF compresses
        inter-rack traffic that it would send raw on a fat fabric."""
        from repro.compression.codecs import Codec
        from repro.compression.engine import CompressionEngine

        f = fabric(uplink_bandwidth=0.5)
        eng = CompressionEngine(
            Codec("t", speed=2.0, decompression_speed=8.0, ratio=0.5),
            size_dependent=False,
        )
        # R(1-xi) = 1.0 > uplink share 0.5, but < host bandwidth 1.0:
        # only the inter-rack flow should compress.
        sim = SliceSimulator(f, make_scheduler("fvdf"), slice_len=0.01,
                             compression=eng)
        sim.submit(Coflow([Flow(0, 2, 4.0)], label="inter"))
        sim.submit(Coflow([Flow(1, 1, 4.0)], label="intra"))
        res = sim.run()
        by_label = {c.label: c for c in res.coflow_results}
        assert by_label["inter"].bytes_sent < 4.0 - 0.5
        assert by_label["intra"].bytes_sent == pytest.approx(4.0)
