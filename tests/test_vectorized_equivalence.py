"""The vectorized allocation hot path matches the scalar reference.

The vectorized :func:`repro.core.rate_allocation.priority_fill` (and the
policies built on it) must be *numerically equivalent* to the scalar
flow-by-flow loop it replaced — not just feasible, the same rates to
1e-9.  This module keeps its own copy of the pre-vectorization scalar
loop as the oracle, so the production code can keep evolving without the
oracle silently following it.

``_SCALAR_TAIL`` is pinned per test so both implementations are
exercised: ``0`` forces the vectorized rounds for every pool, the
default lets the list-based tail take over.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import rate_allocation as ra

N_PORTS = 5
N_RACKS = 2
TOL = 1e-9

# Force-vectorized (tail disabled) and production (tail enabled) paths.
TAILS = [0, ra._SCALAR_TAIL]


def scalar_priority_fill(order, dims, demands=None, out=None, n=None):
    """The pre-vectorization sequential loop, verbatim."""
    if out is None:
        if n is None:
            n = max((len(groups) for groups, _ in dims), default=0)
        out = np.zeros(n, dtype=np.float64)
    for i in order:
        r = ra.flow_headroom(i, dims)
        if demands is not None:
            r = min(r, float(demands[i]))
        if r <= 0.0:
            continue
        out[i] += r
        ra.consume(i, r, dims)
    return out


@st.composite
def fabrics(draw, max_flows=24):
    """Random fabric: big-switch ports plus optional rack-uplink dims."""
    n = draw(st.integers(1, max_flows))
    ints = st.integers(0, N_PORTS - 1)
    src = np.array(draw(st.lists(ints, min_size=n, max_size=n)))
    dst = np.array(draw(st.lists(ints, min_size=n, max_size=n)))
    caps = st.floats(0.05, 10.0, allow_nan=False)
    ci = np.array(draw(st.lists(caps, min_size=N_PORTS, max_size=N_PORTS)))
    co = np.array(draw(st.lists(caps, min_size=N_PORTS, max_size=N_PORTS)))
    extra = None
    if draw(st.booleans()):
        # Rack uplink dimension with exempt (-1) flows mixed in.
        groups = np.array(
            draw(
                st.lists(
                    st.integers(-1, N_RACKS - 1), min_size=n, max_size=n
                )
            )
        )
        ecaps = np.array(
            draw(st.lists(caps, min_size=N_RACKS, max_size=N_RACKS))
        )
        extra = [(groups, ecaps)]
    perm = np.array(draw(st.permutations(range(n))), dtype=np.intp)
    demands = np.array(
        draw(
            st.lists(
                st.floats(0.0, 5.0, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    return src, dst, ci, co, extra, perm, demands


def _copy_extra(extra):
    if extra is None:
        return None
    return [(g, c.copy()) for g, c in extra]


@pytest.mark.parametrize("tail", TAILS)
@given(fabrics())
@settings(max_examples=150, deadline=None)
def test_greedy_priority_matches_scalar(tail, fab):
    src, dst, ci, co, extra, perm, _ = fab
    dims_ref = ra.build_dims(src, dst, ci.copy(), co.copy(), _copy_extra(extra))
    expected = scalar_priority_fill(perm, dims_ref, n=len(src))
    old = ra._SCALAR_TAIL
    ra._SCALAR_TAIL = tail
    try:
        got = ra.greedy_priority(
            perm, src, dst, ci.copy(), co.copy(), extra=_copy_extra(extra)
        )
    finally:
        ra._SCALAR_TAIL = old
    np.testing.assert_allclose(got, expected, atol=TOL, rtol=0)


@pytest.mark.parametrize("tail", TAILS)
@given(fabrics())
@settings(max_examples=150, deadline=None)
def test_minimal_rate_fill_matches_scalar(tail, fab):
    """priority_fill with per-flow demand caps (FVDF's minimal pass)."""
    src, dst, ci, co, extra, perm, demands = fab
    dims_ref = ra.build_dims(src, dst, ci.copy(), co.copy(), _copy_extra(extra))
    expected = scalar_priority_fill(perm, dims_ref, demands=demands, n=len(src))
    dims = ra.build_dims(src, dst, ci.copy(), co.copy(), _copy_extra(extra))
    old = ra._SCALAR_TAIL
    ra._SCALAR_TAIL = tail
    try:
        got = ra.priority_fill(perm, dims, demands=demands, n=len(src))
    finally:
        ra._SCALAR_TAIL = old
    np.testing.assert_allclose(got, expected, atol=TOL, rtol=0)


@pytest.mark.parametrize("tail", TAILS)
@given(fabrics())
@settings(max_examples=100, deadline=None)
def test_minimal_then_backfill_matches_scalar(tail, fab):
    """The FVDF allocate shape: demand-capped fill, then backfill into
    the same rates array against the same mutated capacities."""
    src, dst, ci, co, extra, perm, demands = fab
    dims_ref = ra.build_dims(src, dst, ci.copy(), co.copy(), _copy_extra(extra))
    expected = scalar_priority_fill(perm, dims_ref, demands=demands, n=len(src))
    scalar_priority_fill(perm, dims_ref, out=expected)
    dims = ra.build_dims(src, dst, ci.copy(), co.copy(), _copy_extra(extra))
    old = ra._SCALAR_TAIL
    ra._SCALAR_TAIL = tail
    try:
        gathers = ra.gather_groups(perm, dims)
        got = ra.priority_fill(
            perm, dims, demands=demands, n=len(src), gathers=gathers
        )
        ra.priority_fill(perm, dims, out=got, gathers=gathers)
    finally:
        ra._SCALAR_TAIL = old
    np.testing.assert_allclose(got, expected, atol=TOL, rtol=0)


@pytest.mark.parametrize("tail", TAILS)
@given(fabrics(), st.data())
@settings(max_examples=100, deadline=None)
def test_madd_matches_scalar_backfill(tail, fab, data):
    """madd's vectorized backfill equals MADD pass + scalar backfill."""
    src, dst, ci, co, extra, perm, vol = fab
    n = len(src)
    k = data.draw(st.integers(1, max(1, n)))
    bounds = sorted(
        data.draw(
            st.lists(st.integers(0, n), min_size=k - 1, max_size=k - 1)
        )
    )
    groups = [
        perm[a:b] for a, b in zip([0] + bounds, bounds + [n]) if b > a
    ]
    # Reference: MADD minimal pass (shared), then the scalar greedy
    # backfill the pre-vectorization implementation ran.  Capacities are
    # consumed exactly the way madd's pass does (per-group bincount with
    # a clip at zero).
    ref = ra.madd(
        groups, src, dst, vol, ci.copy(), co.copy(),
        backfill=False, extra=_copy_extra(extra),
    )
    dims_ref = ra.build_dims(src, dst, ci.copy(), co.copy(), _copy_extra(extra))
    for idx in groups:
        r = ref[idx]
        if not (r > 0).any():
            continue
        for g, caps in dims_ref:
            member = g[idx] >= 0
            caps -= np.bincount(
                g[idx][member], weights=r[member], minlength=len(caps)
            )
            np.clip(caps, 0.0, None, out=caps)
    flat = (
        np.concatenate([g for g in groups])
        if groups
        else np.empty(0, dtype=np.intp)
    )
    flat = flat[vol[flat] > 0]
    scalar_priority_fill(flat, dims_ref, out=ref)
    old = ra._SCALAR_TAIL
    ra._SCALAR_TAIL = tail
    try:
        got = ra.madd(
            groups, src, dst, vol, ci.copy(), co.copy(),
            backfill=True, extra=_copy_extra(extra),
        )
    finally:
        ra._SCALAR_TAIL = old
    np.testing.assert_allclose(got, ref, atol=TOL, rtol=0)
