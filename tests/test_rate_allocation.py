"""Rate-allocation primitives: greedy priority, max-min, MADD."""

import numpy as np
import pytest

from repro.core import rate_allocation as ra


def caps(n, c=1.0):
    return np.full(n, c)


class TestGreedyPriority:
    def test_respects_order(self):
        src = np.array([0, 0])
        dst = np.array([0, 0])
        rates = ra.greedy_priority(np.array([1, 0]), src, dst, caps(1), caps(1))
        assert np.allclose(rates, [0.0, 1.0])

    def test_non_conflicting_flows_all_served(self):
        src = np.array([0, 1, 2])
        dst = np.array([0, 1, 2])
        rates = ra.greedy_priority(np.arange(3), src, dst, caps(3), caps(3))
        assert np.allclose(rates, 1.0)

    def test_demand_caps_rate(self):
        src, dst = np.array([0, 1]), np.array([0, 0])
        rates = ra.greedy_priority(
            np.array([0, 1]), src, dst, caps(2), caps(1),
            demands=np.array([0.25, np.inf]),
        )
        assert np.allclose(rates, [0.25, 0.75])

    def test_min_of_both_ports(self):
        # flow 0 shares ingress with flow 1 and egress with flow 2
        src, dst = np.array([0, 0, 1]), np.array([0, 1, 0])
        rates = ra.greedy_priority(np.array([1, 2, 0]), src, dst, caps(2), caps(2))
        assert np.allclose(rates, [0.0, 1.0, 1.0])


class TestMaxminFair:
    def test_equal_split_on_shared_port(self):
        src, dst = np.array([0, 0]), np.array([0, 1])
        rates = ra.maxmin_fair(src, dst, caps(1), caps(2))
        assert np.allclose(rates, [0.5, 0.5])

    def test_weighted_split(self):
        src, dst = np.array([0, 0]), np.array([0, 1])
        rates = ra.maxmin_fair(src, dst, caps(1), caps(2), weights=np.array([2.0, 1.0]))
        assert np.allclose(rates, [2 / 3, 1 / 3])

    def test_unbottlenecked_flow_gets_full_rate(self):
        # flows 0,1 share ingress 0; flow 2 is alone.
        src, dst = np.array([0, 0, 1]), np.array([0, 1, 2])
        rates = ra.maxmin_fair(src, dst, caps(2), caps(3))
        assert np.allclose(rates, [0.5, 0.5, 1.0])

    def test_water_filling_redistributes(self):
        # Classic: flow A limited to 0.2 by demand; B and C share the rest.
        src, dst = np.array([0, 0, 0]), np.array([0, 1, 2])
        rates = ra.maxmin_fair(
            src, dst, caps(1), caps(3), demands=np.array([0.2, np.inf, np.inf])
        )
        assert np.allclose(rates, [0.2, 0.4, 0.4])

    def test_empty(self):
        rates = ra.maxmin_fair(
            np.array([], dtype=int), np.array([], dtype=int), caps(1), caps(1)
        )
        assert len(rates) == 0

    def test_zero_weight_flow_excluded(self):
        src, dst = np.array([0, 0]), np.array([0, 1])
        rates = ra.maxmin_fair(src, dst, caps(1), caps(2), weights=np.array([0.0, 1.0]))
        assert np.allclose(rates, [0.0, 1.0])

    def test_fig4_wss_rates(self):
        """The WSS rates of the motivating example (DESIGN.md derivation)."""
        # e0: f1 (w=4) vs f4 (w=2); e2: f3 (w=2) vs f5 (w=3); f2 alone.
        src = np.array([0, 1, 2, 0, 2])
        dst = np.array([0, 1, 2, 0, 2])
        w = np.array([4.0, 4.0, 2.0, 2.0, 3.0])
        rates = ra.maxmin_fair(src, dst, caps(3), caps(3), weights=w)
        assert np.allclose(rates, [2 / 3, 1.0, 2 / 5, 1 / 3, 3 / 5])


class TestMadd:
    def test_single_coflow_finishes_together(self):
        # Two flows of one coflow: 4 bytes and 2 bytes, disjoint ports.
        src, dst = np.array([0, 1]), np.array([0, 1])
        vol = np.array([4.0, 2.0])
        rates = ra.madd([np.array([0, 1])], src, dst, vol, caps(2), caps(2), backfill=False)
        # bottleneck is 4 s; the 2-byte flow gets exactly 0.5 B/s.
        assert np.allclose(rates, [1.0, 0.5])
        assert np.allclose(vol / rates, [4.0, 4.0])

    def test_backfill_uses_leftover(self):
        src, dst = np.array([0, 1]), np.array([0, 1])
        vol = np.array([4.0, 2.0])
        rates = ra.madd([np.array([0, 1])], src, dst, vol, caps(2), caps(2), backfill=True)
        assert np.allclose(rates, [1.0, 1.0])

    def test_second_coflow_gets_leftover(self):
        # coflow A: one 2-byte flow on port 0 (Γ=2, rate 1);
        # coflow B shares port 0 -> nothing left without backfill.
        src, dst = np.array([0, 0]), np.array([0, 1])
        vol = np.array([2.0, 2.0])
        rates = ra.madd(
            [np.array([0]), np.array([1])], src, dst, vol, caps(1), caps(2),
            backfill=False,
        )
        assert np.allclose(rates, [1.0, 0.0])

    def test_skips_empty_and_drained(self):
        src, dst = np.array([0]), np.array([0])
        rates = ra.madd(
            [np.array([], dtype=int), np.array([0])],
            src, dst, np.array([0.0]), caps(1), caps(1),
        )
        assert np.allclose(rates, [0.0])


class TestCoflowGamma:
    def test_bottleneck_port(self):
        src, dst = np.array([0, 0]), np.array([0, 1])
        gamma = ra.coflow_gamma(np.array([3.0, 3.0]), src, dst, caps(1, 2.0), caps(2, 1.0))
        # ingress 0 carries 6 bytes at 2 B/s = 3 s; each egress 3 bytes at 1 B/s.
        assert gamma == pytest.approx(3.0)

    def test_infinite_when_no_capacity(self):
        src, dst = np.array([0]), np.array([0])
        gamma = ra.coflow_gamma(np.array([1.0]), src, dst, np.array([0.0]), caps(1))
        assert gamma == float("inf")


class TestMaxminExemptFlows:
    def test_exempt_flow_survives_saturated_constraint_zero(self):
        """A flow with group -1 in an extra dimension must not freeze
        when that dimension's constraint 0 saturates.

        Exempt lanes are clipped to index 0 purely to keep the fancy
        index in bounds (np.clip(groups, 0, None)); the member mask must
        discard them before the saturation gather, otherwise a saturated
        constraint 0 freezes every exempt flow alongside its real
        members.
        """
        src = np.array([0, 1])
        dst = np.array([0, 1])
        extra = [(np.array([-1, 0]), np.array([0.5]))]
        rates = ra.maxmin_fair(
            src, dst, caps(2, 10.0), caps(2, 10.0), extra=extra
        )
        # Flow 1 saturates the extra constraint at 0.5 and freezes; flow 0
        # is exempt from it and keeps filling to its port limit.
        assert rates[1] == pytest.approx(0.5)
        assert rates[0] == pytest.approx(10.0)
