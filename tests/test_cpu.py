"""CPU model and utilisation monitoring."""

import numpy as np
import pytest

from repro.cpu.cores import CpuModel, PiecewiseConstantBackground, random_background
from repro.cpu.monitor import CpuReport, UtilizationRecorder
from repro.errors import ConfigurationError


class TestPiecewiseConstantBackground:
    def test_lookup(self):
        bg = PiecewiseConstantBackground([0.0, 10.0], np.array([[0.2], [0.8]]))
        assert bg(5.0)[0] == 0.2
        assert bg(10.0)[0] == 0.8
        assert bg(100.0)[0] == 0.8
        assert bg(-1.0)[0] == 0.2  # clamps to first step

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PiecewiseConstantBackground([], np.zeros((0, 1)))
        with pytest.raises(ConfigurationError):
            PiecewiseConstantBackground([1.0, 0.0], np.zeros((2, 1)))
        with pytest.raises(ConfigurationError):
            PiecewiseConstantBackground([0.0], np.array([[1.5]]))


class TestCpuModel:
    def test_defaults_idle(self):
        cpu = CpuModel(3, cores_per_node=4)
        assert np.all(cpu.free_cores(0.0) == 4)
        assert np.all(cpu.busy_fraction(0.0) == 0.0)

    def test_background_occupies_cores(self):
        cpu = CpuModel(2, cores_per_node=4, background=lambda t: 0.5)
        assert np.all(cpu.free_cores(0.0) == 2)
        # partial core use blocks the whole core
        cpu2 = CpuModel(2, cores_per_node=4, background=lambda t: 0.3)
        assert np.all(cpu2.free_cores(0.0) == 2)  # ceil(1.2) = 2 busy

    def test_claims_reduce_free_cores(self):
        cpu = CpuModel(2, cores_per_node=2)
        cpu.claim(0)
        assert cpu.free_cores(0.0)[0] == 1
        assert cpu.free_cores(0.0)[1] == 2
        assert cpu.busy_fraction(0.0)[0] == pytest.approx(0.5)
        cpu.release(0)
        assert cpu.free_cores(0.0)[0] == 2

    def test_over_release_raises(self):
        cpu = CpuModel(1)
        with pytest.raises(ConfigurationError):
            cpu.release(0)

    def test_release_all(self):
        cpu = CpuModel(1, cores_per_node=3)
        cpu.claim(0, 2)
        cpu.release_all()
        assert cpu.free_cores(0.0)[0] == 3

    def test_free_cores_never_negative(self):
        cpu = CpuModel(1, cores_per_node=2, background=lambda t: 1.0)
        cpu.claim(0, 1)  # engine bug scenario; model must still clamp
        assert cpu.free_cores(0.0)[0] == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CpuModel(0)
        with pytest.raises(ConfigurationError):
            CpuModel(1, cores_per_node=0)


class TestRandomBackground:
    def test_shape_and_bounds(self, rng):
        bg = random_background(rng, num_nodes=4, horizon=100.0, busy_level=0.7)
        for t in [0.0, 10.0, 50.0, 99.0]:
            v = bg(t)
            assert v.shape == (4,)
            assert np.all((v >= 0) & (v <= 1))

    def test_has_idle_periods(self, rng):
        bg = random_background(rng, num_nodes=1, horizon=200.0, busy_level=0.9)
        samples = np.array([bg(t)[0] for t in np.linspace(0, 200, 400)])
        assert (samples == 0).mean() > 0.2  # idle spells exist


class TestUtilizationRecorder:
    def test_sampling_and_stats(self):
        rec = UtilizationRecorder(2)
        rec.sample(0.0, np.array([0.0, 1.0]))
        rec.sample(1.0, np.array([0.0, 0.0]))
        assert len(rec) == 2
        assert rec.mean_utilization() == pytest.approx(0.25)
        assert rec.idle_time_fraction() == pytest.approx(0.75)

    def test_node_timeline_and_idle_periods(self):
        rec = UtilizationRecorder(1)
        for t, b in [(0, 0.0), (1, 0.0), (2, 0.9), (3, 0.0), (4, 0.9)]:
            rec.sample(t, np.array([b]))
        times, busy = rec.node_timeline(0)
        assert list(times) == [0, 1, 2, 3, 4]
        periods = rec.idle_periods(0)
        assert periods == [(0.0, 2.0), (3.0, 4.0)]

    def test_node_out_of_range(self):
        rec = UtilizationRecorder(1)
        with pytest.raises(ConfigurationError):
            rec.node_timeline(5)

    def test_sample_model(self):
        cpu = CpuModel(2, cores_per_node=2)
        cpu.claim(1)
        rec = UtilizationRecorder(2)
        rec.sample_model(0.0, cpu)
        assert rec.busy[0, 1] == pytest.approx(0.5)

    def test_cpu_report(self):
        cpu = CpuModel(2, cores_per_node=4, background=lambda t: 0.25)
        rep = CpuReport.measure(cpu, node=1, t=2.0)
        assert rep.node == 1
        assert rep.busy_fraction == pytest.approx(0.25)
        assert rep.free_cores == 3
