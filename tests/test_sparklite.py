"""sparklite: partitioners, lineage, stages, serializer, end-to-end jobs."""

from collections import Counter

import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.sparklite import (
    HashPartitioner,
    RangePartitioner,
    SparkLiteContext,
    bucket_by_key,
    build_stages,
    deserialize_block,
    num_stages,
    serialize_block,
    split_evenly,
    stable_hash,
)


class TestPartitioners:
    def test_stable_hash_is_process_independent(self):
        # blake2b of repr: a fixed value guards against accidental salting.
        assert stable_hash("word") == stable_hash("word")
        assert stable_hash("a") != stable_hash("b")

    def test_hash_partitioner_range(self):
        p = HashPartitioner(4)
        assert all(0 <= p(k) < 4 for k in ["x", 1, (2, 3), None])

    def test_hash_partitioner_eq(self):
        assert HashPartitioner(4) == HashPartitioner(4)
        assert HashPartitioner(4) != HashPartitioner(5)

    def test_hash_partitioner_validation(self):
        with pytest.raises(ConfigurationError):
            HashPartitioner(0)

    def test_range_partitioner_orders_buckets(self):
        rp = RangePartitioner.from_keys(list(range(100)), 4)
        buckets = [rp(k) for k in range(100)]
        assert buckets == sorted(buckets)
        assert set(buckets) == {0, 1, 2, 3}

    def test_range_partitioner_single_bucket(self):
        rp = RangePartitioner.from_keys([1, 2, 3], 1)
        assert rp(99) == 0

    def test_split_evenly(self):
        parts = split_evenly(list(range(7)), 3)
        assert [len(p) for p in parts] == [3, 2, 2]
        assert sorted(x for p in parts for x in p) == list(range(7))

    def test_bucket_by_key_requires_kv(self):
        with pytest.raises(ConfigurationError, match="key, value"):
            bucket_by_key([42], HashPartitioner(2), 2)


class TestSerializer:
    def test_roundtrip(self):
        recs = [("a", 1), ("b", [2, 3])]
        assert deserialize_block(serialize_block(recs)) == recs

    def test_corrupt_block(self):
        with pytest.raises(TraceFormatError, match="corrupt"):
            deserialize_block(b"not a pickle")

    def test_non_list_payload(self):
        import pickle

        with pytest.raises(TraceFormatError, match="expected list"):
            deserialize_block(pickle.dumps({"a": 1}))


class TestStages:
    def ctx(self):
        return SparkLiteContext(num_nodes=2, bandwidth=1e6)

    def test_narrow_only_is_one_stage(self):
        rdd = self.ctx().parallelize([1, 2, 3]).map(str).filter(bool)
        assert num_stages(rdd) == 1

    def test_each_shuffle_adds_a_stage(self):
        ctx = self.ctx()
        rdd = (
            ctx.parallelize([("a", 1)])
            .reduce_by_key(lambda a, b: a + b)
            .map_values(lambda v: v * 2)
            .group_by_key()
        )
        assert num_stages(rdd) == 3

    def test_transforms_assigned_to_right_stage(self):
        ctx = self.ctx()
        rdd = ctx.parallelize([("a", 1)]).map(lambda r: r).reduce_by_key(
            lambda a, b: a
        ).map_values(lambda v: v)
        _, plans = build_stages(rdd)
        assert len(plans[0].transforms) == 1
        assert len(plans[1].transforms) == 1
        assert plans[1].shuffle is not None


class TestEndToEnd:
    def ctx(self, **kw):
        base = dict(num_nodes=4, bandwidth=100_000.0)
        base.update(kw)
        return SparkLiteContext(**base)

    def test_wordcount_matches_python(self):
        text = ["to be or not to be", "that is the question"] * 20
        ctx = self.ctx()
        counts = dict(
            ctx.parallelize(text)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert counts == Counter(w for l in text for w in l.split())

    def test_sort_by_key_is_globally_sorted(self):
        import random

        rng = random.Random(3)
        keys = [rng.randrange(1000) for _ in range(200)]
        out = (
            self.ctx()
            .parallelize([(k, k * 2) for k in keys], 5)
            .sort_by_key(4)
            .collect()
        )
        assert [k for k, _ in out] == sorted(keys)
        assert all(v == k * 2 for k, v in out)

    def test_group_by_key(self):
        data = [("a", 1), ("b", 2), ("a", 3)]
        out = dict(self.ctx().parallelize(data, 2).group_by_key(2).collect())
        assert sorted(out["a"]) == [1, 3]
        assert out["b"] == [2]

    def test_multi_stage_pipeline(self):
        """Two chained shuffles: count words, then histogram the counts."""
        text = ["a a b", "b c c", "a b"] * 10
        ctx = self.ctx()
        hist = dict(
            ctx.parallelize(text, 3)
            .flat_map(str.split)
            .map(lambda w: (w, 1))
            .reduce_by_key(lambda x, y: x + y)
            .map(lambda kv: (kv[1], 1))
            .reduce_by_key(lambda x, y: x + y)
            .collect()
        )
        counts = Counter(w for l in text for w in l.split())
        expected = Counter(counts.values())
        assert hist == dict(expected)
        assert len(ctx.shuffle_reports) == 2

    def test_count_action(self):
        assert self.ctx().parallelize(range(37), 5).count() == 37

    def test_empty_shuffle_short_circuits(self):
        ctx = self.ctx()
        out = (
            ctx.parallelize([1, 2, 3])
            .filter(lambda x: x > 100)
            .map(lambda x: (x, 1))
            .reduce_by_key(lambda a, b: a + b)
            .collect()
        )
        assert out == []
        assert ctx.shuffle_reports == []  # nothing crossed the fabric

    def test_simulated_time_advances_with_shuffles(self):
        ctx = self.ctx(bandwidth=10_000.0)
        payload = [("k%03d" % (i % 40), "v" * 50) for i in range(2000)]
        ctx.parallelize(payload, 4).group_by_key(4).collect()
        assert ctx.now > 0.0
        rep = ctx.shuffle_reports[0]
        assert rep.duration > 0
        assert rep.payload_bytes > 0
        assert rep.num_flows > 0

    def test_shuffle_report_accounting(self):
        ctx = self.ctx(bandwidth=20_000.0)
        data = [(i % 8, "x" * 100) for i in range(500)]
        ctx.parallelize(data, 4).group_by_key(4).collect()
        rep = ctx.shuffle_reports[0]
        # wire bytes never exceed payload bytes (compression can shrink).
        assert rep.wire_bytes <= rep.payload_bytes * (1 + 1e-9)
        assert 0.0 <= rep.traffic_reduction < 1.0

    def test_compression_reduces_wire_bytes_on_thin_pipe(self):
        """Repetitive payload + slow network: Swallow compresses blocks and
        wire bytes drop below payload bytes."""
        data = [(i % 4, "abcdef" * 200) for i in range(400)]
        slow = self.ctx(bandwidth=5_000.0, smart_compress=True)
        slow.parallelize(data, 4).group_by_key(4).collect()
        rep = slow.shuffle_reports[0]
        assert rep.traffic_reduction > 0.2

    def test_no_compression_when_disabled(self):
        data = [(i % 4, "abcdef" * 200) for i in range(400)]
        ctx = self.ctx(bandwidth=5_000.0, smart_compress=False)
        ctx.parallelize(data, 4).group_by_key(4).collect()
        assert ctx.shuffle_reports[0].traffic_reduction == pytest.approx(0.0)

    def test_map_values(self):
        out = dict(
            self.ctx().parallelize([("a", 1), ("b", 2)], 2)
            .map_values(lambda v: v * 10)
            .group_by_key(2)
            .collect()
        )
        assert out == {"a": [10], "b": [20]}

    def test_results_deterministic_across_runs(self):
        def job():
            ctx = self.ctx()
            return sorted(
                ctx.parallelize([("k%d" % (i % 5), i) for i in range(100)], 4)
                .reduce_by_key(lambda a, b: a + b)
                .collect()
            )

        assert job() == job()

    def test_validation(self):
        ctx = self.ctx()
        with pytest.raises(ConfigurationError):
            ctx.parallelize([1], num_partitions=0)


class TestComposites:
    def ctx(self):
        return SparkLiteContext(num_nodes=4, bandwidth=100_000.0)

    def test_distinct(self):
        out = self.ctx().parallelize([1, 2, 2, 3, 3, 3], 3).distinct(2).collect()
        assert sorted(out) == [1, 2, 3]

    def test_sample_fraction_and_determinism(self):
        ctx = self.ctx()
        data = list(range(2000))
        a = ctx.parallelize(data, 4).sample(0.25, seed=1).collect()
        b = ctx.parallelize(data, 4).sample(0.25, seed=1).collect()
        assert a == b
        assert 0.15 < len(a) / len(data) < 0.35
        assert set(a) <= set(data)

    def test_sample_validation(self):
        with pytest.raises(ConfigurationError):
            self.ctx().parallelize([1]).sample(1.5)

    def test_union(self):
        ctx = self.ctx()
        a = ctx.parallelize([1, 2])
        b = ctx.parallelize([3])
        assert sorted(ctx.union(a, b).collect()) == [1, 2, 3]

    def test_union_requires_input(self):
        with pytest.raises(ConfigurationError):
            self.ctx().union()

    def test_union_then_shuffle(self):
        ctx = self.ctx()
        a = ctx.parallelize([("x", 1)])
        b = ctx.parallelize([("x", 2), ("y", 5)])
        out = dict(ctx.union(a, b).reduce_by_key(lambda p, q: p + q).collect())
        assert out == {"x": 3, "y": 5}

    def test_join(self):
        ctx = self.ctx()
        users = ctx.parallelize([(1, "ada"), (2, "bob"), (3, "cyd")])
        orders = ctx.parallelize([(1, "pen"), (1, "ink"), (3, "mug"), (9, "n/a")])
        out = sorted(ctx.join(users, orders).collect())
        assert out == [(1, ("ada", "ink")), (1, ("ada", "pen")),
                       (3, ("cyd", "mug"))]

    def test_join_crosses_the_fabric(self):
        ctx = self.ctx()
        a = ctx.parallelize([(i % 5, i) for i in range(50)])
        b = ctx.parallelize([(i % 5, -i) for i in range(50)])
        before = len(ctx.shuffle_reports)
        joined = ctx.join(a, b)
        assert len(ctx.shuffle_reports) > before  # the join shuffled
        assert joined.count() == 50 * 10  # 10 x 10 per key, 5 keys
