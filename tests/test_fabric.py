"""Big-switch fabric and port bookkeeping."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.fabric.bigswitch import BigSwitch
from repro.fabric.ports import PortSet, port_loads


def test_portset_scalar_broadcast():
    ps = PortSet(3, 2.0)
    assert np.allclose(ps.capacity, [2.0, 2.0, 2.0])


def test_portset_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        PortSet(2, 0.0)
    with pytest.raises(ConfigurationError):
        PortSet(2, [1.0, -1.0])
    with pytest.raises(ConfigurationError):
        PortSet(0, 1.0)


def test_portset_capacity_is_readonly():
    ps = PortSet(2, 1.0)
    with pytest.raises(ValueError):
        ps.capacity[0] = 5.0


def test_portset_remaining_is_writable_copy():
    ps = PortSet(2, 1.0)
    rem = ps.remaining()
    rem[0] = 0.0
    assert ps.capacity[0] == 1.0


def test_port_loads():
    loads = port_loads(np.array([0, 0, 2]), np.array([1.0, 2.0, 5.0]), 4)
    assert np.allclose(loads, [3.0, 0.0, 5.0, 0.0])


def test_bigswitch_asymmetric():
    sw = BigSwitch(num_ports=2, bandwidth=1.0, egress_bandwidth=3.0, num_egress_ports=5)
    assert sw.num_ingress == 2
    assert sw.num_egress == 5
    assert np.allclose(sw.egress.capacity, 3.0)


def test_feasibility_accepts_valid():
    sw = BigSwitch(3, 1.0)
    sw.check_feasible(np.array([0, 1]), np.array([1, 2]), np.array([0.5, 1.0]))


def test_feasibility_rejects_ingress_oversubscription():
    sw = BigSwitch(3, 1.0)
    with pytest.raises(SchedulingError, match="ingress port 0"):
        sw.check_feasible(np.array([0, 0]), np.array([1, 2]), np.array([0.6, 0.6]))


def test_feasibility_rejects_egress_oversubscription():
    sw = BigSwitch(3, 1.0)
    with pytest.raises(SchedulingError, match="egress port 2"):
        sw.check_feasible(np.array([0, 1]), np.array([2, 2]), np.array([0.6, 0.6]))


def test_feasibility_rejects_negative_rates():
    sw = BigSwitch(3, 1.0)
    with pytest.raises(SchedulingError, match="negative"):
        sw.check_feasible(np.array([0]), np.array([1]), np.array([-0.1]))


def test_flow_link_cap_is_min_of_both_ends():
    sw = BigSwitch(num_ports=2, bandwidth=[1.0, 4.0], egress_bandwidth=[2.0, 3.0])
    caps = sw.flow_link_cap(np.array([0, 1]), np.array([1, 0]))
    assert np.allclose(caps, [1.0, 2.0])


def test_validate_endpoints():
    sw = BigSwitch(2, 1.0)
    with pytest.raises(ConfigurationError):
        sw.validate_endpoints(np.array([2]), np.array([0]))
    with pytest.raises(ConfigurationError):
        sw.validate_endpoints(np.array([0]), np.array([5]))
