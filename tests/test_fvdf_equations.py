"""Direct numeric checks of the paper's equations (Eq. 1–3, 7, 8).

These bypass the engine: a hand-built SchedulerView pins the exact
arithmetic of the core contribution.
"""

import numpy as np
import pytest

from repro.compression.codecs import Codec
from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.events import EventKind, ScheduleTrigger
from repro.core.flow import Flow
from repro.core.fvdf import (
    coflow_gamma,
    compression_strategy,
    expected_fct,
    upgrade,
)
from repro.core.scheduler import CoflowState, SchedulerView
from repro.fabric.bigswitch import BigSwitch


def make_view(
    raw, comp, xi, src=None, dst=None, bandwidth=1.0, slice_len=0.1,
    compressible=None, free_cores=None, engine=None, coflow_groups=None,
):
    n = len(raw)
    raw = np.asarray(raw, dtype=np.float64)
    comp = np.asarray(comp, dtype=np.float64)
    xi = np.asarray(xi, dtype=np.float64)
    src = np.zeros(n, dtype=np.intp) if src is None else np.asarray(src, dtype=np.intp)
    dst = np.zeros(n, dtype=np.intp) if dst is None else np.asarray(dst, dtype=np.intp)
    fabric = BigSwitch(int(max(src.max(), dst.max())) + 1, bandwidth)
    groups = coflow_groups or [list(range(n))]
    states = []
    for g in groups:
        cof = Coflow([Flow(int(src[i]), int(dst[i]), float(raw[i] + comp[i]) or 1.0)
                      for i in g])
        states.append(CoflowState(coflow=cof, flow_idx=np.asarray(g, dtype=np.intp)))
    return SchedulerView(
        time=0.0,
        slice_len=slice_len,
        trigger=ScheduleTrigger({EventKind.ARRIVAL}),
        fabric=fabric,
        flow_ids=np.arange(n),
        src=src,
        dst=dst,
        raw=raw,
        comp=comp,
        xi=xi,
        size=raw + comp,
        arrival=np.zeros(n),
        coflow_ids=np.asarray(
            [states[k].coflow_id for k, g in enumerate(groups) for _ in g]
        ),
        compressible=(np.ones(n, dtype=bool) if compressible is None
                      else np.asarray(compressible, dtype=bool)),
        coflows=states,
        free_cores=(np.full(fabric.num_ingress, 4) if free_cores is None
                    else np.asarray(free_cores)),
        compression=engine,
    )


def engine(speed, ratio):
    return CompressionEngine(
        Codec("eq", speed=speed, decompression_speed=4 * speed, ratio=ratio),
        size_dependent=False,
    )


class TestEq7:
    def test_without_compression(self):
        """β=0: Γ_F = δ + (V − B·δ)/B = V/B exactly."""
        view = make_view(raw=[10.0], comp=[0.0], xi=[0.5], bandwidth=2.0,
                         slice_len=0.1)
        gamma = expected_fct(view, beta=np.array([False]))
        assert gamma[0] == pytest.approx(10.0 / 2.0)

    def test_with_compression(self):
        """β=1: one slice of Δc = R(1−ξ)δ disposal, remainder at B."""
        eng = engine(speed=8.0, ratio=0.25)
        view = make_view(raw=[10.0], comp=[0.0], xi=[0.25], bandwidth=2.0,
                         slice_len=0.1, engine=eng)
        gamma = expected_fct(view, beta=np.array([True]))
        # Δc = 8·0.75·0.1 = 0.6 ;  Γ = 0.1 + (10 − 0.6)/2 = 4.8
        assert gamma[0] == pytest.approx(4.8)

    def test_disposal_never_negative(self):
        """A flow smaller than one slice's disposal clamps at zero."""
        view = make_view(raw=[0.05], comp=[0.0], xi=[0.5], bandwidth=2.0,
                         slice_len=0.1)
        gamma = expected_fct(view, beta=np.array([False]))
        assert gamma[0] == pytest.approx(0.1)  # just the slice itself


class TestEq8:
    def test_max_over_members(self):
        view = make_view(
            raw=[4.0, 9.0, 2.0], comp=[0.0, 0.0, 0.0], xi=[0.5] * 3,
            src=[0, 1, 2], dst=[0, 1, 2], bandwidth=1.0, slice_len=0.1,
        )
        g = coflow_gamma(view, beta=np.zeros(3, dtype=bool))
        assert g[0] == pytest.approx(9.0)  # slowest flow dominates

    def test_per_coflow_groups(self):
        view = make_view(
            raw=[4.0, 9.0], comp=[0.0, 0.0], xi=[0.5, 0.5],
            src=[0, 1], dst=[0, 1], bandwidth=1.0,
            coflow_groups=[[0], [1]],
        )
        g = coflow_gamma(view, beta=np.zeros(2, dtype=bool))
        assert g[0] == pytest.approx(4.0)
        assert g[1] == pytest.approx(9.0)


class TestEq3Strategy:
    def test_enabled_exactly_when_disposal_beats_link(self):
        eng = engine(speed=4.0, ratio=0.5)  # disposal 2.0
        for bandwidth, expect in [(1.0, True), (3.0, False)]:
            view = make_view(raw=[10.0], comp=[0.0], xi=[0.5],
                             bandwidth=bandwidth, engine=eng)
            beta = compression_strategy(view)
            assert bool(beta[0]) is expect, bandwidth

    def test_respects_compressible_flag(self):
        eng = engine(speed=100.0, ratio=0.5)
        view = make_view(raw=[10.0], comp=[0.0], xi=[0.5],
                         compressible=[False], engine=eng)
        assert not compression_strategy(view).any()

    def test_respects_core_budget(self):
        eng = engine(speed=100.0, ratio=0.5)
        view = make_view(raw=[10.0, 10.0], comp=[0.0, 0.0], xi=[0.5, 0.5],
                         src=[0, 0], dst=[0, 0], free_cores=[1],
                         engine=eng)
        beta = compression_strategy(view)
        assert beta.sum() == 1

    def test_sub_slice_volume_guard(self):
        """Δt would already finish the flow: never compress (DESIGN.md)."""
        eng = engine(speed=100.0, ratio=0.5)
        view = make_view(raw=[0.05], comp=[0.0], xi=[0.5], bandwidth=1.0,
                         slice_len=0.1, engine=eng)
        assert not compression_strategy(view).any()

    def test_raw_exhausted_flow_not_compressed(self):
        eng = engine(speed=100.0, ratio=0.5)
        view = make_view(raw=[0.0], comp=[5.0], xi=[0.5], engine=eng)
        assert not compression_strategy(view).any()


class TestUpgrade:
    def test_multiplies_priority_classes(self):
        view = make_view(raw=[1.0, 1.0], comp=[0.0, 0.0], xi=[0.5, 0.5],
                         src=[0, 1], dst=[0, 1],
                         coflow_groups=[[0], [1]])
        upgrade(view, logbase=1.2)
        upgrade(view, logbase=1.2)
        for cs in view.coflows:
            assert cs.priority_class == pytest.approx(1.44)
