"""Cluster deployment simulator: jobs, stages, GC, traffic."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterSimulator,
    GcModel,
    JobSpec,
    NodeSpec,
    build_shuffle_coflow,
    place_tasks,
)
from repro.errors import ConfigurationError
from repro.schedulers import make_scheduler
from repro.traces.spark import get_profile
from repro.units import GB, MB, gbps


def small_job(arrival=0.0, app="sort", mappers=2, reducers=2, scale=1e-3, **kw):
    return JobSpec(
        app=get_profile(app),
        input_bytes=64 * MB,
        num_mappers=mappers,
        num_reducers=reducers,
        shuffle_scale=scale,
        arrival=arrival,
        **kw,
    )


def run_cluster(jobs, scheduler="sebf", **cfg_kw):
    cfg = ClusterConfig(num_nodes=8, bandwidth=gbps(1), **cfg_kw)
    sim = ClusterSimulator(cfg, make_scheduler(scheduler))
    sim.submit_jobs(jobs)
    return sim.run()


class TestJobSpec:
    def test_shuffle_and_output_bytes(self):
        spec = small_job(scale=1.0, mappers=3, reducers=2)
        assert spec.shuffle_bytes == pytest.approx(
            6 * get_profile("sort").block_uncompressed
        )
        assert spec.output_bytes == pytest.approx(32 * MB)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JobSpec(app=get_profile("sort"), input_bytes=0)
        with pytest.raises(ConfigurationError):
            JobSpec(app=get_profile("sort"), input_bytes=1, num_mappers=0)
        with pytest.raises(ConfigurationError):
            JobSpec(app=get_profile("sort"), input_bytes=1, shuffle_scale=0)

    def test_auto_label(self):
        spec = small_job()
        assert spec.label.startswith("sort-")


class TestNodeSpec:
    def test_defaults_sane(self):
        spec = NodeSpec()
        assert spec.cores > 0 and spec.map_speed > 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(cores=0)
        with pytest.raises(ConfigurationError):
            NodeSpec(disk_bandwidth=-1)


class TestGcModel:
    def test_monotone_in_allocation(self):
        gc = GcModel()
        allocs = np.linspace(0, 8 * GB, 20)
        times = [gc.gc_time(a) for a in allocs]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_pressure_kicks_in_past_knee(self):
        gc = GcModel(heap=1 * GB, pressure_knee=0.5)
        assert gc.pressure(0.25 * GB) == 1.0
        assert gc.pressure(0.9 * GB) > 1.0

    def test_compression_halves_alloc_reduces_gc(self):
        gc = GcModel()
        assert gc.gc_time(1 * GB) > gc.gc_time(0.25 * GB)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GcModel(heap=0)
        with pytest.raises(ConfigurationError):
            GcModel(pressure_knee=0)
        with pytest.raises(ConfigurationError):
            GcModel().gc_time(-1)


class TestShuffleBuild:
    def test_flow_matrix(self, rng):
        spec = small_job(mappers=3, reducers=2, scale=1.0)
        c = build_shuffle_coflow(spec, [0, 1, 2], [3, 4], arrival=5.0)
        assert c.width == 6
        assert c.arrival == 5.0
        assert all(f.ratio_override == pytest.approx(spec.app.ratio) for f in c.flows)

    def test_node_count_mismatch(self):
        spec = small_job(mappers=2, reducers=2)
        with pytest.raises(ConfigurationError, match="mapper nodes"):
            build_shuffle_coflow(spec, [0], [1, 2], 0.0)
        with pytest.raises(ConfigurationError, match="reducer nodes"):
            build_shuffle_coflow(spec, [0, 1], [2], 0.0)

    def test_place_tasks_spreads(self, rng):
        nodes = place_tasks(rng, 4, 8)
        assert len(set(nodes.tolist())) == 4  # no collisions when room
        many = place_tasks(rng, 20, 8)
        assert len(many) == 20


class TestClusterRuns:
    def test_single_job_all_stages_ordered(self):
        res = run_cluster([small_job()])
        assert len(res.job_results) == 1
        j = res.job_results[0]
        assert j.map_stage.start <= j.map_stage.end <= j.shuffle_stage.end
        assert j.shuffle_stage.end <= j.reduce_stage.end <= j.result_stage.end
        assert j.jct > 0

    def test_stage_means_keys(self):
        res = run_cluster([small_job(), small_job(arrival=1.0)])
        means = res.stage_means()
        assert set(means) == {"map", "shuffle", "reduce", "result"}
        assert all(v >= 0 for v in means.values())

    def test_no_compression_no_traffic_reduction(self):
        res = run_cluster([small_job()], scheduler="sebf")
        assert res.traffic_reduction == pytest.approx(0.0)

    def test_swallow_reduces_traffic_by_app_ratio(self):
        """A sort job on a thin network compresses ~fully: traffic drops by
        ~1 - 0.2496 (Table I)."""
        cfg = ClusterConfig(num_nodes=8, bandwidth=100 * MB / 8)
        sim = ClusterSimulator(cfg, make_scheduler("fvdf"))
        sim.submit_jobs([small_job(scale=1e-2)])
        res = sim.run()
        assert res.traffic_reduction == pytest.approx(0.75, abs=0.08)

    def test_swallow_improves_jct(self):
        jobs_a = [small_job(arrival=i * 0.5, scale=5e-3) for i in range(4)]
        jobs_b = [small_job(arrival=i * 0.5, scale=5e-3) for i in range(4)]
        base = run_cluster(jobs_a, scheduler="sebf")
        swallow = run_cluster(jobs_b, scheduler="fvdf")
        assert swallow.avg_jct < base.avg_jct

    def test_gc_lower_with_compression(self):
        base = run_cluster([small_job(scale=0.1)], scheduler="sebf")
        comp = run_cluster([small_job(scale=0.1)], scheduler="fvdf")
        assert comp.gc_summary()["reduce"] <= base.gc_summary()["reduce"]
        assert comp.gc_summary()["map"] <= base.gc_summary()["map"]

    def test_double_submit_rejected(self):
        cfg = ClusterConfig(num_nodes=4)
        sim = ClusterSimulator(cfg, make_scheduler("sebf"))
        job = small_job()
        sim.submit_job(job)
        with pytest.raises(ConfigurationError, match="twice"):
            sim.submit_job(job)

    def test_completions_sorted(self):
        res = run_cluster([small_job(arrival=float(i)) for i in range(3)])
        comps = res.completions()
        assert comps == sorted(comps)
        assert len(comps) == 3

    def test_cores_released_at_end(self):
        cfg = ClusterConfig(num_nodes=4)
        sim = ClusterSimulator(cfg, make_scheduler("sebf"))
        sim.submit_jobs([small_job(), small_job(arrival=0.2)])
        sim.run()
        assert np.all(sim.cpu.claimed == 0)

    def test_cpu_sampling(self):
        res = run_cluster([small_job()], sample_cpu=True)
        assert res.cpu_recorder is not None
        assert len(res.cpu_recorder) > 0

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(bandwidth=0)

    def test_waves_stretch_map_stage(self):
        """More map tasks than cluster slots queue into waves (per-task
        work held constant by scaling the input with the task count)."""
        def run(mappers):
            cfg = ClusterConfig(
                num_nodes=2, bandwidth=gbps(1),
                node_spec=NodeSpec(cores=2), seed=6,
            )
            sim = ClusterSimulator(cfg, make_scheduler("sebf"))
            job = JobSpec(
                app=get_profile("sort"),
                input_bytes=mappers * 32 * MB,  # 32 MB per map task
                num_mappers=mappers,
                num_reducers=1,
                shuffle_scale=1e-3,
            )
            sim.submit_jobs([job])
            return sim.run().stage_means()["map"]

        one_wave = run(2)  # 2 tasks on 4 slots
        many_waves = run(16)  # 16 tasks on 4 slots -> >= 4 waves
        assert many_waves >= one_wave * 3


class TestIterativeJobs:
    def run_one(self, rounds):
        cfg = ClusterConfig(num_nodes=8, bandwidth=gbps(1), seed=2)
        sim = ClusterSimulator(cfg, make_scheduler("sebf"))
        sim.submit_jobs([small_job(scale=2e-2, rounds=rounds)])
        net = sim.net
        res = sim.run()
        return res, net

    def test_rounds_validation(self):
        with pytest.raises(ConfigurationError):
            small_job(rounds=0)

    def test_total_shuffle_bytes_scale_with_rounds(self):
        spec1 = small_job(scale=1.0, rounds=1)
        spec3 = small_job(scale=1.0, rounds=3)
        assert spec3.shuffle_bytes == pytest.approx(3 * spec1.shuffle_bytes)
        assert spec3.shuffle_bytes_per_round == pytest.approx(spec1.shuffle_bytes)

    def test_each_round_is_one_coflow(self):
        res, net = self.run_one(rounds=3)
        assert len(net.result().coflow_results) == 3
        assert res.job_results[0].failed is False

    def test_iterative_job_takes_longer(self):
        one, _ = self.run_one(rounds=1)
        three, _ = self.run_one(rounds=3)
        assert three.avg_jct > one.avg_jct
        # shuffle + reduce stage time accumulates across rounds.
        assert three.stage_means()["shuffle"] > one.stage_means()["shuffle"]
        assert three.stage_means()["reduce"] > one.stage_means()["reduce"]

    def test_swallow_compresses_every_round(self):
        cfg = ClusterConfig(num_nodes=8, bandwidth=100 * MB / 8, seed=2)
        sim = ClusterSimulator(cfg, make_scheduler("fvdf"))
        sim.submit_jobs([small_job(scale=1e-2, rounds=3)])
        res = sim.run()
        assert res.traffic_reduction == pytest.approx(0.75, abs=0.08)


class TestHibenchSuites:
    def test_scales_match_table7(self, rng):
        from repro.cluster import SCALE_TRAFFIC, hibench_suite, suite_shuffle_bytes

        for scale, target in SCALE_TRAFFIC.items():
            suite = hibench_suite(scale, rng, num_jobs=10)
            assert suite_shuffle_bytes(suite) == pytest.approx(target, rel=1e-6)

    def test_unknown_scale(self, rng):
        from repro.cluster import hibench_suite

        with pytest.raises(ConfigurationError):
            hibench_suite("ludicrous", rng)

    def test_expected_reduction_near_paper(self, rng):
        """The default mix's full-compression saving brackets the paper's
        48.41% average."""
        from repro.cluster import expected_traffic_reduction, hibench_suite

        suite = hibench_suite("large", rng, num_jobs=12)
        assert expected_traffic_reduction(suite) == pytest.approx(0.484, abs=0.06)

    def test_poisson_arrivals(self, rng):
        from repro.cluster import hibench_suite

        suite = hibench_suite("large", rng, num_jobs=20, arrival_rate=2.0)
        arr = [s.arrival for s in suite]
        assert arr == sorted(arr)
        assert arr[-1] > 0

    def test_iterative_apps_stay_calibrated(self, rng):
        """Marking pagerank iterative must not change the suite's total
        Table VII traffic — per-round volume shrinks instead."""
        from repro.cluster import SCALE_TRAFFIC, hibench_suite, suite_shuffle_bytes

        suite = hibench_suite(
            "large", rng, num_jobs=12, iterative={"pagerank": 3}
        )
        assert suite_shuffle_bytes(suite) == pytest.approx(
            SCALE_TRAFFIC["large"], rel=1e-6
        )
        pr = [s for s in suite if s.app.name == "pagerank"]
        assert pr and all(s.rounds == 3 for s in pr)
