"""Event kinds and the arrival calendars (columnar + legacy heap)."""

import numpy as np
import pytest

from repro.core.coflow import Coflow
from repro.core.events import (
    ArrivalCalendar,
    EventKind,
    HeapCalendar,
    ScheduleTrigger,
)
from repro.core.flow import Flow


def cf(arrival):
    return Coflow([Flow(0, 0, 1.0)], arrival=arrival)


class TestScheduleTrigger:
    def test_preemption_points(self):
        assert ScheduleTrigger({EventKind.ARRIVAL}).is_preemption_point
        assert ScheduleTrigger({EventKind.COMPLETION}).is_preemption_point
        assert not ScheduleTrigger({EventKind.RAW_EXHAUSTED}).is_preemption_point
        assert not ScheduleTrigger({EventKind.START}).is_preemption_point
        assert not ScheduleTrigger().is_preemption_point

    def test_flags(self):
        t = ScheduleTrigger({EventKind.ARRIVAL, EventKind.COMPLETION})
        assert t.has_arrival and t.has_completion


class TestArrivalCalendar:
    def test_orders_by_time(self):
        cal = ArrivalCalendar()
        cal.push(5.0, 0)  # slot 0 arrives late
        cal.push(1.0, 1)  # slot 1 arrives early
        assert cal.peek_time() == 1.0
        assert cal.pop_due(1.0).tolist() == [1]
        assert cal.pop_due(10.0).tolist() == [0]

    def test_stable_for_ties(self):
        cal = ArrivalCalendar()
        cal.push(2.0, 7)
        cal.push(2.0, 3)
        assert cal.pop_due(2.0).tolist() == [7, 3]

    def test_stable_for_ties_across_merges(self):
        # first batch merged (forced by a pop), second batch staged later:
        # insertion order must survive the merge of tied times.
        cal = ArrivalCalendar()
        cal.push(2.0, 7)
        assert cal.pop_due(1.0).size == 0  # forces a merge of [7]
        cal.push(2.0, 3)
        cal.push(1.0, 5)
        assert cal.pop_due(2.0).tolist() == [5, 7, 3]

    def test_batch_push_out_of_order(self):
        cal = ArrivalCalendar()
        cal.push_batch(np.array([3.0, 1.0, 2.0]), np.array([0, 1, 2]))
        assert len(cal) == 3
        assert cal.peek_time() == 1.0
        assert cal.pop_due(3.0).tolist() == [1, 2, 0]

    def test_pop_due_partial(self):
        cal = ArrivalCalendar()
        for slot, t in enumerate((1.0, 2.0, 3.0)):
            cal.push(t, slot)
        assert cal.pop_due(2.0).size == 2
        assert len(cal) == 1
        assert cal.peek_time() == 3.0

    def test_empty(self):
        cal = ArrivalCalendar()
        assert cal.peek_time() is None
        assert cal.pop_due(100.0).size == 0
        assert len(cal) == 0

    def test_discard(self):
        cal = ArrivalCalendar()
        cal.push(1.0, 0)
        cal.push(2.0, 1)
        cal.discard(0)
        assert len(cal) == 1
        assert cal.peek_time() == 2.0
        assert cal.pop_due(10.0).tolist() == [1]

    def test_discard_staged_entry(self):
        cal = ArrivalCalendar()
        cal.push(1.0, 0)
        assert cal.pop_due(0.5).size == 0  # merge slot 0
        cal.push(2.0, 1)  # staged
        cal.discard(1)
        assert len(cal) == 1
        assert cal.pop_due(10.0).tolist() == [0]

    def test_remap(self):
        cal = ArrivalCalendar()
        cal.push_batch(np.array([1.0, 2.0, 3.0]), np.array([0, 1, 2]))
        # drain evicted slot 1: slot 2 becomes slot 1, slot 1 dropped
        cal.remap(np.array([0, -1, 1]))
        assert len(cal) == 2
        assert cal.pop_due(10.0).tolist() == [0, 1]

    def test_export_import_round_trip(self):
        cal = ArrivalCalendar()
        cal.push_batch(np.array([2.0, 2.0, 1.0]), np.array([4, 9, 2]))
        cal.discard(9)
        times, seqs, slots = cal.export_entries()
        other = ArrivalCalendar()
        other.import_entries(times, seqs, slots)
        assert len(other) == len(cal) == 2
        assert other.pop_due(10.0).tolist() == cal.pop_due(10.0).tolist()
        # a fresh push after import must not collide with imported seqs
        other.push(2.0, 13)
        assert other.pop_due(10.0).tolist() == [13]


class TestHeapCalendar:
    def test_orders_by_time(self):
        cal = HeapCalendar()
        late, early = cf(5.0), cf(1.0)
        cal.push(late)
        cal.push(early)
        assert cal.peek_time() == 1.0
        assert cal.pop_due(1.0) == [early]
        assert cal.pop_due(10.0) == [late]

    def test_stable_for_ties(self):
        cal = HeapCalendar()
        a, b = cf(2.0), cf(2.0)
        cal.push(a)
        cal.push(b)
        assert cal.pop_due(2.0) == [a, b]

    def test_pop_due_partial(self):
        cal = HeapCalendar()
        for t in (1.0, 2.0, 3.0):
            cal.push(cf(t))
        assert len(cal.pop_due(2.0)) == 2
        assert len(cal) == 1
        assert cal.peek_time() == 3.0

    def test_empty(self):
        cal = HeapCalendar()
        assert cal.peek_time() is None
        assert cal.pop_due(100.0) == []
        assert len(cal) == 0

    def test_prune_head(self):
        cal = HeapCalendar()
        a, b = cf(1.0), cf(2.0)
        cal.push(a)
        cal.push(b)
        cal.prune_head(lambda c: c is a)
        assert cal.peek_time() == 2.0
