"""Event kinds and the arrival calendar."""

import pytest

from repro.core.coflow import Coflow
from repro.core.events import ArrivalCalendar, EventKind, ScheduleTrigger
from repro.core.flow import Flow


def cf(arrival):
    return Coflow([Flow(0, 0, 1.0)], arrival=arrival)


class TestScheduleTrigger:
    def test_preemption_points(self):
        assert ScheduleTrigger({EventKind.ARRIVAL}).is_preemption_point
        assert ScheduleTrigger({EventKind.COMPLETION}).is_preemption_point
        assert not ScheduleTrigger({EventKind.RAW_EXHAUSTED}).is_preemption_point
        assert not ScheduleTrigger({EventKind.START}).is_preemption_point
        assert not ScheduleTrigger().is_preemption_point

    def test_flags(self):
        t = ScheduleTrigger({EventKind.ARRIVAL, EventKind.COMPLETION})
        assert t.has_arrival and t.has_completion


class TestArrivalCalendar:
    def test_orders_by_time(self):
        cal = ArrivalCalendar()
        late, early = cf(5.0), cf(1.0)
        cal.push(late)
        cal.push(early)
        assert cal.peek_time() == 1.0
        assert cal.pop_due(1.0) == [early]
        assert cal.pop_due(10.0) == [late]

    def test_stable_for_ties(self):
        cal = ArrivalCalendar()
        a, b = cf(2.0), cf(2.0)
        cal.push(a)
        cal.push(b)
        assert cal.pop_due(2.0) == [a, b]

    def test_pop_due_partial(self):
        cal = ArrivalCalendar()
        for t in (1.0, 2.0, 3.0):
            cal.push(cf(t))
        assert len(cal.pop_due(2.0)) == 2
        assert len(cal) == 1
        assert cal.peek_time() == 3.0

    def test_empty(self):
        cal = ArrivalCalendar()
        assert cal.peek_time() is None
        assert cal.pop_due(100.0) == []
        assert len(cal) == 0
