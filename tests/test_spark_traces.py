"""Spark shuffle traces and Table I application profiles."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.spark import (
    TABLE_I,
    AppProfile,
    get_profile,
    mean_table1_ratio,
    shuffle_coflow,
    spark_trace,
)


class TestTableI:
    def test_all_eleven_apps_present(self):
        assert len(TABLE_I) == 11

    @pytest.mark.parametrize(
        "name,ratio",
        [
            ("wordcount", 0.5591),
            ("sort", 0.2496),
            ("terasort", 0.2793),
            ("dfsio", 0.1897),
            ("logistic-regression", 0.7513),
            ("lda", 0.6830),
            ("svm", 0.4796),
            ("bayes", 0.2633),
            ("random-forest", 0.6830),
            ("pagerank", 0.4241),
            ("nweight", 0.2897),
        ],
    )
    def test_ratios_match_paper(self, name, ratio):
        assert get_profile(name).ratio == pytest.approx(ratio, abs=5e-4)

    def test_unknown_app(self):
        with pytest.raises(ConfigurationError):
            get_profile("bitcoin-miner")

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            AppProfile("x", 10, 5)  # compressed > uncompressed
        with pytest.raises(ConfigurationError):
            AppProfile("x", 0, 5)

    def test_mean_ratio_in_plausible_band(self):
        # byte-weighted mix is dominated by sort/terasort (~25-28%)
        assert 0.2 < mean_table1_ratio() < 0.4


class TestShuffleCoflow:
    def test_structure(self, rng):
        app = get_profile("pagerank")
        c = shuffle_coflow(app, num_mappers=3, num_reducers=2, num_ports=8, rng=rng)
        assert c.width == 6
        for f in c.flows:
            assert f.ratio_override == pytest.approx(app.ratio)
            assert 0 <= f.src < 8 and 0 <= f.dst < 8

    def test_sizes_near_block_size(self, rng):
        app = get_profile("wordcount")
        c = shuffle_coflow(
            app, num_mappers=2, num_reducers=2, num_ports=4, rng=rng,
            size_jitter=0.0,
        )
        for f in c.flows:
            assert f.size == pytest.approx(app.block_uncompressed)

    def test_scale(self, rng):
        app = get_profile("svm")
        c = shuffle_coflow(
            app, 1, 1, 4, rng, scale=10.0, size_jitter=0.0
        )
        assert c.flows[0].size == pytest.approx(app.block_uncompressed * 10)

    def test_validation(self, rng):
        app = get_profile("svm")
        with pytest.raises(ConfigurationError):
            shuffle_coflow(app, 0, 1, 4, rng)
        with pytest.raises(ConfigurationError):
            shuffle_coflow(app, 1, 1, 0, rng)


class TestSparkTrace:
    def test_stream_shape(self, rng):
        trace = spark_trace(rng, num_jobs=20, num_ports=8, arrival_rate=1.0)
        assert len(trace) == 20
        arrivals = [c.arrival for c in trace]
        assert arrivals == sorted(arrivals)

    def test_app_restriction(self, rng):
        trace = spark_trace(rng, num_jobs=10, apps=["sort"])
        assert all(c.label.startswith("sort-") for c in trace)

    def test_simulation_traffic_matches_app_ratio(self, rng):
        """Replaying a sort-only trace through FVDF on a slow link must
        reduce traffic by ~1 - 0.2496 (the Table I ratio)."""
        from repro.compression.engine import CompressionEngine
        from repro.core.simulator import SliceSimulator
        from repro.fabric.bigswitch import BigSwitch
        from repro.schedulers import make_scheduler

        trace = spark_trace(
            rng, num_jobs=3, num_ports=4, apps=["sort"],
            mappers=1, reducers=1, scale=1e-6, arrival_rate=10.0,
        )
        # fast codec + thin pipe: everything gets compressed.
        eng = CompressionEngine("lz4", size_dependent=False)
        sim = SliceSimulator(
            BigSwitch(4, bandwidth=1e3),
            make_scheduler("fvdf"),
            slice_len=0.01,
            compression=eng,
        )
        sim.submit_many(trace)
        res = sim.run()
        assert res.traffic_reduction == pytest.approx(1 - 0.2496, abs=0.05)
