"""Every decision-kernel backend is bit-identical to the python one.

The ``kernel=`` knob is excluded from result-cache digests on the
strength of one claim: backends change *where* the decision arithmetic
runs, never *what* it computes.  This module is that claim's enforcement
— the same pools, gamma reductions and whole simulations go through
``python``, ``threaded``, ``compiled`` (which resolves to ``threaded``
when numba is absent) and ``process`` (worker-process shards over shm
columns) and must come back ``np.array_equal``-exact, not merely close.

Coverage deliberately spans every dispatch regime:

* hypothesis pools around and below the scalar-tail crossover
  (``tail=0`` forces the vectorized rounds, the production default lets
  the list tail take over);
* the backfill (no-demands) fill against zero-headroom capacities — the
  prefilter / drained-group collapse path;
* ``segment_max`` including ``reduceat``'s empty-segment quirk;
* deterministic big pools that force the multi-shard plan
  (block-diagonal components + a lowered shard floor) and multi-chunk
  rounds (a lowered ``CHUNK_ROWS``), each checked against the untouched
  single-shard/single-chunk plan as well as across backends.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import fvdf, kernels
from repro.core import rate_allocation as ra
from repro.core.kernels import fill, partition

BACKENDS = ("python", "threaded", "compiled", "process")
N_PORTS = 5
N_RACKS = 2
TAILS = [0, ra._SCALAR_TAIL]


@st.composite
def fabrics(draw, max_flows=24):
    """Random fabric: big-switch ports plus optional rack-uplink dims."""
    n = draw(st.integers(1, max_flows))
    ints = st.integers(0, N_PORTS - 1)
    src = np.array(draw(st.lists(ints, min_size=n, max_size=n)))
    dst = np.array(draw(st.lists(ints, min_size=n, max_size=n)))
    caps = st.floats(0.05, 10.0, allow_nan=False)
    ci = np.array(draw(st.lists(caps, min_size=N_PORTS, max_size=N_PORTS)))
    co = np.array(draw(st.lists(caps, min_size=N_PORTS, max_size=N_PORTS)))
    extra = None
    if draw(st.booleans()):
        groups = np.array(
            draw(
                st.lists(
                    st.integers(-1, N_RACKS - 1), min_size=n, max_size=n
                )
            )
        )
        ecaps = np.array(
            draw(st.lists(caps, min_size=N_RACKS, max_size=N_RACKS))
        )
        extra = [(groups, ecaps)]
    perm = np.array(draw(st.permutations(range(n))), dtype=np.intp)
    demands = np.array(
        draw(
            st.lists(
                st.floats(0.0, 5.0, allow_nan=False), min_size=n, max_size=n
            )
        )
    )
    return src, dst, ci, co, extra, perm, demands


def _copy_extra(extra):
    if extra is None:
        return None
    return [(g, c.copy()) for g, c in extra]


def _fill_under(name, fab, tail, demands):
    """Run one priority_fill under backend ``name``; rates + final caps."""
    src, dst, ci, co, extra, perm, _ = fab
    dims = ra.build_dims(src, dst, ci.copy(), co.copy(), _copy_extra(extra))
    old = ra._SCALAR_TAIL
    ra._SCALAR_TAIL = tail
    try:
        with kernels.use_kernel(name):
            got = ra.priority_fill(perm, dims, demands=demands, n=len(src))
    finally:
        ra._SCALAR_TAIL = old
    return got, [caps for _, caps in dims]


@pytest.mark.parametrize("tail", TAILS)
@given(fabrics())
@settings(max_examples=120, deadline=None)
def test_demand_fill_bitwise_across_backends(tail, fab):
    demands = fab[-1]
    ref_rates, ref_caps = _fill_under("python", fab, tail, demands)
    for name in BACKENDS[1:]:
        rates, caps = _fill_under(name, fab, tail, demands)
        assert np.array_equal(rates, ref_rates), name
        for got, want in zip(caps, ref_caps):
            assert np.array_equal(got, want), name


@pytest.mark.parametrize("tail", TAILS)
@given(fabrics())
@settings(max_examples=120, deadline=None)
def test_backfill_bitwise_across_backends(tail, fab):
    """The no-demands backfill (FVDF's work-conserving pass)."""
    ref_rates, ref_caps = _fill_under("python", fab, tail, None)
    for name in BACKENDS[1:]:
        rates, caps = _fill_under(name, fab, tail, None)
        assert np.array_equal(rates, ref_rates), name
        for got, want in zip(caps, ref_caps):
            assert np.array_equal(got, want), name


@pytest.mark.parametrize("name", BACKENDS)
def test_backfill_zero_headroom_prefilter(name):
    """Backfill against drained dimensions: the prefilter must grant
    nothing through dead groups, identically on every backend."""
    n = 12
    rng = np.random.default_rng(7)
    src = rng.integers(0, N_PORTS, size=n)
    dst = rng.integers(0, N_PORTS, size=n)
    ci = np.array([0.0, 3.0, 0.0, 2.0, 1.0])  # two ingress ports drained
    co = np.array([1.0, 0.0, 2.0, 0.0, 3.0])  # two egress ports drained
    perm = np.arange(n, dtype=np.intp)
    fab = (src, dst, ci, co, None, perm, None)
    ref_rates, ref_caps = _fill_under("python", fab, 0, None)
    rates, caps = _fill_under(name, fab, 0, None)
    assert np.array_equal(rates, ref_rates)
    for got, want in zip(caps, ref_caps):
        assert np.array_equal(got, want)
    drained = (ci == 0.0)[src] | (co == 0.0)[dst]
    assert not rates[drained].any()


# -- segment_max (the gamma reduction) ---------------------------------------


@given(st.data())
@settings(max_examples=100, deadline=None)
def test_segment_max_bitwise_across_backends(data):
    n = data.draw(st.integers(1, 40))
    values = np.array(
        data.draw(
            st.lists(
                st.floats(-1e6, 1e6, allow_nan=False),
                min_size=n,
                max_size=n,
            )
        )
    )
    perm = np.array(data.draw(st.permutations(range(n))), dtype=np.intp)
    n_seg = data.draw(st.integers(1, n))
    cuts = sorted(
        data.draw(
            st.lists(
                st.integers(0, n - 1), min_size=n_seg - 1, max_size=n_seg - 1
            )
        )
    )
    starts = np.array([0] + cuts + [n], dtype=np.intp)
    ref = np.maximum.reduceat(values[perm], starts[:-1])
    for name in BACKENDS:
        got = kernels.resolve_kernel(name).segment_max(values, perm, starts)
        assert np.array_equal(got, ref), name


@pytest.mark.parametrize("name", BACKENDS)
def test_segment_max_empty_segment_quirk(name):
    """Zero-length segments reproduce reduceat's documented behaviour
    (``out[i] = values[perm][starts[i]]``) on every backend."""
    values = np.array([5.0, -2.0, 7.0, 1.0])
    perm = np.arange(4, dtype=np.intp)
    starts = np.array([0, 2, 2, 4], dtype=np.intp)  # middle segment empty
    got = kernels.resolve_kernel(name).segment_max(values, perm, starts)
    assert np.array_equal(got, np.array([5.0, 7.0, 7.0]))


@pytest.mark.parametrize("name", BACKENDS)
def test_coflow_gamma_runs_through_active_kernel(name, monkeypatch):
    """fvdf's module-level gamma wiring dispatches to the active kernel."""
    calls = []

    class Spy(kernels.DecisionKernel):
        def segment_max(self, values, perm, starts):
            calls.append(name)
            return super().segment_max(values, perm, starts)

    monkeypatch.setitem(kernels._INSTANCES, "python", Spy())
    gamma_f = np.array([3.0, 1.0, 4.0, 1.0, 5.0])
    perm = np.arange(5, dtype=np.intp)
    starts = np.array([0, 2, 5], dtype=np.intp)
    with kernels.use_kernel("python"):
        got = kernels.active_kernel().segment_max(gamma_f, perm, starts)
    assert calls and np.array_equal(got, np.array([3.0, 5.0]))


# -- shard / chunk plans -----------------------------------------------------


def _component_pool(n_comp=6, flows_per=40, seed=3):
    """Block-diagonal fabric: component c only touches its own 2 ports."""
    rng = np.random.default_rng(seed)
    n = n_comp * flows_per
    src = np.empty(n, dtype=np.int64)
    dst = np.empty(n, dtype=np.int64)
    for c in range(n_comp):
        sl = slice(c * flows_per, (c + 1) * flows_per)
        src[sl] = 2 * c
        dst[sl] = 2 * c + 1
    ci = np.full(2 * n_comp, 4.0)
    co = np.full(2 * n_comp, 3.0)
    perm = rng.permutation(n).astype(np.intp)
    demands = rng.uniform(0.1, 2.0, size=n)
    return src, dst, ci, co, None, perm, demands


def test_multi_shard_plan_matches_single_shard():
    """Lowering the shard floor activates the component decomposition;
    grants and capacities must match the untouched single-shard plan
    bitwise, on every backend."""
    fab = _component_pool()
    demands = fab[-1]
    ref_rates, ref_caps = _fill_under("python", fab, 0, demands)

    old_floor = fill.MIN_SHARD_ENTRIES
    fill.MIN_SHARD_ENTRIES = 8
    try:
        # The plan must actually split now — otherwise this test is vacuous.
        src, dst, *_ = fab
        dims = ra.build_dims(src, dst, fab[2].copy(), fab[3].copy(), None)
        order = fab[5]
        gathers = ra.gather_groups(order, dims)
        rows, rowg = _fused_rows(order, dims, gathers)
        plan = fill._plan_shards(rows, rowg, order.size, sum(
            len(c) for _, c in dims
        ))
        assert plan is not None and plan[2].size - 1 > 1
        for name in BACKENDS:
            rates, caps = _fill_under(name, fab, 0, demands)
            assert np.array_equal(rates, ref_rates), name
            for got, want in zip(caps, ref_caps):
                assert np.array_equal(got, want), name
    finally:
        fill.MIN_SHARD_ENTRIES = old_floor


def _fused_rows(order, dims, gathers):
    """Rebuild the fused (entry, group) rows the fill would see, sorted
    by fused group id — mirrors ``_fill_contended_demands``'s row prep
    closely enough to interrogate the shard planner."""
    sizes = [len(caps) for _, caps in dims]
    goffs = np.concatenate(([0], np.cumsum(sizes))).astype(np.intp)
    rows_l, rowg_l = [], []
    for d, (groups, _caps) in enumerate(dims):
        g = groups[order]
        memb = g >= 0
        idx = np.flatnonzero(memb)
        rows_l.append(idx)
        rowg_l.append(g[idx] + goffs[d])
    rows = np.concatenate(rows_l) if rows_l else np.empty(0, dtype=np.intp)
    rowg = (
        np.concatenate(rowg_l) if rowg_l else np.empty(0, dtype=np.int64)
    )
    sort = np.argsort(rowg, kind="stable")
    return rows[sort].astype(np.intp), rowg[sort]


def test_multi_chunk_rounds_match_single_chunk():
    """A lowered CHUNK_ROWS splits each round's row phase into many
    segment-aligned chunks; the split must be invisible to the values."""
    rng = np.random.default_rng(11)
    n = 3000
    src = rng.integers(0, 4, size=n)
    dst = rng.integers(0, 4, size=n)
    ci = np.full(4, 5.0)  # heavily overloaded: many rounds survive
    co = np.full(4, 5.0)
    perm = rng.permutation(n).astype(np.intp)
    demands = rng.uniform(0.001, 0.02, size=n)
    fab = (src, dst, ci, co, None, perm, demands)
    ref_rates, ref_caps = _fill_under("python", fab, 64, demands)

    old_chunk = partition.CHUNK_ROWS
    partition.CHUNK_ROWS = 512
    try:
        for name in BACKENDS:
            rates, caps = _fill_under(name, fab, 64, demands)
            assert np.array_equal(rates, ref_rates), name
            for got, want in zip(caps, ref_caps):
                assert np.array_equal(got, want), name
    finally:
        partition.CHUNK_ROWS = old_chunk


def test_chunk_bounds_are_segment_aligned():
    seg_starts = np.array([0, 10, 25, 100, 4000, 7000], dtype=np.intp)
    bounds = partition.chunk_bounds(9000, seg_starts, chunk=1000)
    assert bounds[0] == 0 and bounds[-1] == 9000
    inner = bounds[1:-1]
    assert np.isin(inner, seg_starts).all()
    assert (np.diff(bounds) > 0).all()


def test_label_components_block_diagonal():
    fab = _component_pool(n_comp=4, flows_per=16)
    src, dst, ci, co, _, perm, _ = fab
    dims = ra.build_dims(src, dst, ci.copy(), co.copy(), None)
    gathers = ra.gather_groups(perm, dims)
    rows, rowg = _fused_rows(perm, dims, gathers)
    comp = partition.label_components(
        rows, rowg, perm.size, sum(len(c) for _, c in dims)
    )
    assert comp is not None
    # Entries in the same block share a label; across blocks they differ.
    blocks = src[perm] // 2
    for b in range(4):
        labels = np.unique(comp[blocks == b])
        assert labels.size == 1
    assert np.unique(comp).size == 4


# -- whole-simulation identity ------------------------------------------------


def _run_sim(kernel):
    from repro.analysis.harness import run_policy
    from repro.schedulers import make_scheduler
    from repro.traces.generator import WorkloadConfig, generate_workload

    cfg = WorkloadConfig(num_coflows=30, num_ports=8, arrival_rate=50.0)
    coflows = generate_workload(cfg, np.random.default_rng(123))
    sched = make_scheduler("fvdf", kernel=kernel)
    return run_policy(sched, coflows)


def test_simulation_bitwise_identical_across_backends():
    """End to end: FVDF runs (gamma reductions + priority fills at every
    decision point) produce bitwise-equal FCT/CCT under every backend."""
    ref = _run_sim("python")
    for name in BACKENDS[1:]:
        got = _run_sim(name)
        assert np.array_equal(got.fct_array, ref.fct_array), name
        assert np.array_equal(got.cct_array, ref.cct_array), name
        assert got.makespan == ref.makespan, name


def test_make_scheduler_rejects_unknown_kernel():
    from repro.errors import ConfigurationError
    from repro.schedulers import make_scheduler

    with pytest.raises(ConfigurationError):
        make_scheduler("fvdf", kernel="vectorized")


def test_env_selection_and_fallback(monkeypatch):
    monkeypatch.setenv(kernels.ENV_KERNEL, "threaded")
    assert kernels.resolve_kernel(None).name == "threaded"
    monkeypatch.setenv(kernels.ENV_KERNEL, "nope")
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        kernels.resolve_kernel(None)
    # compiled never errors without numba — it degrades to threaded.
    if not kernels.have_numba():
        assert kernels.resolve_kernel("compiled").name == "threaded"


# -- process dispatch evidence ------------------------------------------------


def _shm_leftovers():
    import glob

    from repro.runner import shm

    return glob.glob(f"/dev/shm/{shm.SHM_PREFIX}*")


@pytest.mark.skipif(
    not kernels._process_usable(), reason="shared-memory transport unusable"
)
def test_process_backend_dispatches_shards_and_cleans_up():
    """Forced multi-shard fill under ``process``: shards must actually
    cross the process boundary (DISPATCHED evidence), come back bitwise
    equal to the serial reference, and leave /dev/shm spotless."""
    from repro.core.kernels import process

    fab = _component_pool(n_comp=10, flows_per=6, seed=5)
    demands = fab[-1]
    ref_rates, ref_caps = _fill_under("python", fab, 0, demands)
    old_floor = fill.MIN_SHARD_ENTRIES
    fill.MIN_SHARD_ENTRIES = 2
    before = process.DISPATCHED
    try:
        rates, caps = _fill_under("process", fab, 0, demands)
    finally:
        fill.MIN_SHARD_ENTRIES = old_floor
    assert process.DISPATCHED - before >= 10, "shards never left the parent"
    assert np.array_equal(rates, ref_rates)
    for got, want in zip(caps, ref_caps):
        assert np.array_equal(got, want)
    assert not _shm_leftovers()


def test_process_backend_single_shard_never_spawns_pool():
    """Pools without a multi-shard plan stay on the inherited threaded
    path — the kernel is safe to request unconditionally."""
    from repro.core.kernels import process

    fab = _component_pool(n_comp=1, flows_per=30, seed=9)
    before = process.DISPATCHED
    ref_rates, _ = _fill_under("python", fab, 0, fab[-1])
    rates, _ = _fill_under("process", fab, 0, fab[-1])
    assert process.DISPATCHED == before
    assert np.array_equal(rates, ref_rates)


def test_pool_workers_env_parsing(monkeypatch):
    from repro.core.kernels import process
    from repro.errors import ConfigurationError

    monkeypatch.setenv(process.ENV_PROCS, "3")
    assert process.pool_workers() == 3
    monkeypatch.setenv(process.ENV_PROCS, "zero")
    with pytest.raises(ConfigurationError):
        process.pool_workers()


# -- selection hardening ------------------------------------------------------


def test_use_kernel_restores_prior_on_raise():
    """An exception escaping a use_kernel block must not leak the block's
    backend into the surrounding context."""
    with kernels.use_kernel("python"):
        base = kernels.active_kernel()
        with pytest.raises(RuntimeError):
            with kernels.use_kernel("threaded"):
                assert kernels.active_kernel().name == "threaded"
                raise RuntimeError("boom")
        assert kernels.active_kernel() is base


def test_use_kernel_unknown_name_leaves_selection_untouched():
    from repro.errors import ConfigurationError

    with kernels.use_kernel("python"):
        before = kernels.active_kernel()
        with pytest.raises(ConfigurationError):
            with kernels.use_kernel("turbo"):
                pass  # pragma: no cover - resolve fails before entry
        assert kernels.active_kernel() is before


def test_resolve_normalizes_case_and_whitespace():
    assert kernels.resolve_kernel("  Threaded \n").name == "threaded"
    assert kernels.resolve_kernel("PROCESS").name == "process"


def test_unknown_env_kernel_error_names_the_variable(monkeypatch):
    from repro.errors import ConfigurationError

    monkeypatch.setenv(kernels.ENV_KERNEL, "warp")
    with pytest.raises(ConfigurationError) as exc:
        kernels.resolve_kernel(None)
    msg = str(exc.value)
    assert "$" + kernels.ENV_KERNEL in msg
    assert "'warp'" in msg
    for name in kernels.KERNEL_NAMES:
        assert name in msg


def test_unknown_kernel_argument_error_names_the_argument():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError) as exc:
        kernels.resolve_kernel("warp")
    assert "kernel argument" in str(exc.value)


def test_resolved_name_pins_down_requests():
    assert kernels.resolved_name("python") == "python"
    assert kernels.resolved_name("auto") in (
        "python", "threaded", "compiled", "process",
    )
    if not kernels.have_numba():
        assert kernels.resolved_name("compiled") == "threaded"
