"""Property-based correctness of sparklite against plain Python.

Random pipelines over random data must compute exactly what the same
operations compute without the framework — regardless of partitioning,
shuffling, serialization or (real) compression along the way.
"""

from collections import Counter, defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparklite import SparkLiteContext

keys = st.text(alphabet="abcdef", min_size=1, max_size=2)
records = st.lists(st.tuples(keys, st.integers(-100, 100)), min_size=0, max_size=60)


def make_ctx(parts):
    return SparkLiteContext(
        num_nodes=3, bandwidth=1e6, smart_compress=True, real_compression=True,
        default_parallelism=parts,
    )


@given(records, st.integers(1, 5), st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_reduce_by_key_matches_python(data, parts, reducers):
    ctx = make_ctx(parts)
    out = dict(
        ctx.parallelize(data)
        .reduce_by_key(lambda a, b: a + b, reducers)
        .collect()
    )
    expected = defaultdict(int)
    for k, v in data:
        expected[k] += v
    assert out == dict(expected)


@given(records, st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_group_then_aggregate_matches_python(data, parts):
    ctx = make_ctx(parts)
    out = dict(
        ctx.parallelize(data)
        .group_by_key(2)
        .map_values(lambda vs: sorted(vs))
        .collect()
    )
    expected = defaultdict(list)
    for k, v in data:
        expected[k].append(v)
    assert out == {k: sorted(v) for k, v in expected.items()}


@given(records, st.integers(1, 4))
@settings(max_examples=40, deadline=None)
def test_sort_by_key_matches_python(data, parts):
    ctx = make_ctx(parts)
    out = ctx.parallelize(data).sort_by_key(3).collect()
    assert [k for k, _ in out] == sorted(k for k, _ in data)
    assert Counter(out) == Counter(data)


@given(st.lists(st.integers(-50, 50), max_size=60), st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_map_filter_distinct_pipeline(data, parts):
    ctx = make_ctx(parts)
    out = (
        ctx.parallelize(data)
        .map(lambda x: x * 2)
        .filter(lambda x: x >= 0)
        .distinct(2)
        .collect()
    )
    assert sorted(out) == sorted({x * 2 for x in data if x * 2 >= 0})


def test_text_file(tmp_path):
    p = tmp_path / "corpus.txt"
    p.write_text("alpha beta\ngamma\n")
    ctx = make_ctx(2)
    words = ctx.text_file(p).flat_map(str.split).collect()
    assert sorted(words) == ["alpha", "beta", "gamma"]
