"""Aalo-style D-CLAS scheduler (information-agnostic extension)."""

import numpy as np
import pytest

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import DCLAS, make_scheduler
from repro.units import MB


def run(coflows, n_ports=4, bandwidth=10 * MB, **kw):
    sim = SliceSimulator(BigSwitch(n_ports, bandwidth), DCLAS(**kw), slice_len=0.01)
    sim.submit_many(coflows)
    return sim.run()


class TestConfig:
    def test_registry(self):
        assert make_scheduler("dclas").name == "dclas"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DCLAS(first_threshold=0)
        with pytest.raises(ConfigurationError):
            DCLAS(multiplier=1.0)
        with pytest.raises(ConfigurationError):
            DCLAS(num_queues=0)

    def test_queue_boundaries(self):
        d = DCLAS(first_threshold=10.0, multiplier=10.0, num_queues=4)
        assert d.queue_of(0.0) == 0
        assert d.queue_of(9.9) == 0
        assert d.queue_of(10.0) == 1
        assert d.queue_of(99.0) == 1
        assert d.queue_of(1e6) == 3  # clamped to last queue


class TestScheduling:
    def test_small_coflow_not_blocked_by_demoted_elephant(self):
        """The elephant accumulates sent bytes, drops a queue, and the
        late-arriving mouse preempts it — LAS without prior knowledge."""
        elephant = Coflow([Flow(0, 0, 100 * MB)], arrival=0.0, label="elephant")
        mouse = Coflow([Flow(0, 0, 2 * MB)], arrival=3.0, label="mouse")
        res = run([elephant, mouse], bandwidth=10 * MB,
                  first_threshold=10 * MB)
        cct = {c.label: c.cct for c in res.coflow_results}
        # elephant sent 30 MB by t=3 -> demoted below the fresh mouse.
        assert cct["mouse"] == pytest.approx(0.2, abs=0.05)
        assert cct["elephant"] == pytest.approx(10.2, abs=0.1)

    def test_same_queue_is_fifo(self):
        a = Coflow([Flow(0, 0, 5 * MB)], arrival=0.0, label="a")
        b = Coflow([Flow(0, 0, 5 * MB)], arrival=0.1, label="b")
        res = run([a, b], bandwidth=10 * MB)
        cct = {c.label: c.cct for c in res.coflow_results}
        # a finishes at 0.5; b waits for a and finishes at 1.0 (cct 0.9).
        assert cct["a"] == pytest.approx(0.5, abs=0.05)
        assert cct["b"] == pytest.approx(0.9, abs=0.05)

    def test_behaves_sanely_on_random_workload(self, rng):
        coflows = []
        for k in range(8):
            flows = [
                Flow(int(rng.integers(0, 4)), int(rng.integers(0, 4)),
                     float(rng.uniform(1, 20) * MB))
                for _ in range(int(rng.integers(1, 4)))
            ]
            coflows.append(Coflow(flows, arrival=k * 0.5))
        res = run(coflows)
        assert len(res.coflow_results) == 8

    def test_between_clairvoyant_and_agnostic(self, rng):
        """On a size-diverse batch, D-CLAS should land between coflow-FIFO
        (fully agnostic) and SEBF (fully clairvoyant) on average CCT."""
        from repro.analysis import ExperimentSetup, run_many

        coflows = []
        for k in range(12):
            w = int(rng.integers(1, 4))
            flows = [
                Flow(int(rng.integers(0, 6)), int(rng.integers(0, 6)),
                     float(rng.choice([1, 5, 50]) * MB))
                for _ in range(w)
            ]
            coflows.append(Coflow(flows, arrival=float(k) * 0.3))
        setup = ExperimentSetup(num_ports=6, bandwidth=10 * MB, slice_len=0.01)
        out = run_many(["coflow-fifo", "dclas", "sebf"], coflows, setup)
        # Clairvoyant SEBF dominates both agnostic policies.
        assert out["sebf"].avg_cct <= out["dclas"].avg_cct * 1.05
        assert out["sebf"].avg_cct <= out["coflow-fifo"].avg_cct * 1.05
        # D-CLAS stays in FIFO's regime (its worst case is FIFO-with-
        # demotion-thrash, not a blow-up).
        assert out["dclas"].avg_cct <= out["coflow-fifo"].avg_cct * 1.25
