"""The fresh()/reset() contract: no state leaks between runs.

``run_policy``/``run_many`` accept live Scheduler objects; several
policies carry cross-run state (FVDF's served-window map feeding the
"starved" aging rule, EDF's admission/rejection sets).  The harness
calls ``fresh()`` before every run, so back-to-back runs of the *same*
instance must be identical to runs of newly built ones.
"""

import numpy as np

from repro.analysis import ExperimentSetup, run_many, run_policy
from repro.core.fvdf import FVDFScheduler
from repro.schedulers import DeadlineEDF, make_scheduler
from repro.traces.distributions import ConstantSize
from repro.traces.generator import WorkloadConfig, generate_workload

SETUP = ExperimentSetup(num_ports=4, bandwidth=10.0, slice_len=0.01)


def _workload(seed=7, num_coflows=12):
    cfg = WorkloadConfig(
        num_coflows=num_coflows, num_ports=4, size_dist=ConstantSize(3.0),
        width=(1, 3), arrival_rate=4.0,
    )
    return generate_workload(cfg, np.random.default_rng(seed))


def _fingerprint(result):
    return (
        [f.fct for f in result.flow_results],
        [c.cct for c in result.coflow_results],
        result.makespan,
        result.decision_points,
    )


class TestFreshContract:
    def test_fresh_resets_in_place_and_returns_self(self):
        sched = FVDFScheduler()
        sched._last_served = {0: False, 3: True}
        assert sched.fresh() is sched
        assert sched._last_served == {}

    def test_fresh_clears_edf_admission_state(self):
        sched = DeadlineEDF()
        sched._admitted.add(1)
        sched._rejected.add(2)
        sched.fresh()
        assert not sched._admitted and not sched._rejected

    def test_base_scheduler_fresh_is_noop(self):
        sched = make_scheduler("fifo")
        assert sched.fresh() is sched


class TestBackToBackRuns:
    def test_fvdf_instance_reuse_is_identical(self):
        """The regression this contract exists for: FVDF's served-window
        map (`_last_served`) must not leak into the next run and skew the
        "starved" aging decisions."""
        workload = _workload()
        sched = FVDFScheduler()
        first = run_policy(sched, workload, SETUP)
        # The instance now carries end-of-run state; without fresh() a
        # second run over the same coflow ids could age differently.
        second = run_policy(sched, workload, SETUP)
        pristine = run_policy(FVDFScheduler(), workload, SETUP)
        assert _fingerprint(first) == _fingerprint(second)
        assert _fingerprint(first) == _fingerprint(pristine)

    def test_fvdf_reuse_identical_even_with_poisoned_state(self):
        """Even a maximally stale served-window map cannot change results,
        because the harness freshens the instance before running."""
        workload = _workload()
        baseline = run_policy(FVDFScheduler(), workload, SETUP)
        sched = FVDFScheduler()
        sched._last_served = {c.coflow_id: False for c in workload}
        poisoned = run_policy(sched, workload, SETUP)
        assert _fingerprint(baseline) == _fingerprint(poisoned)

    def test_edf_instance_reuse_is_identical(self):
        cfg = WorkloadConfig(
            num_coflows=10, num_ports=4, size_dist=ConstantSize(3.0),
            width=(1, 3), arrival_rate=4.0,
        )
        workload = generate_workload(cfg, np.random.default_rng(1))
        deadlined = [
            type(c)(
                [type(f)(f.src, f.dst, f.size, compressible=f.compressible)
                 for f in c.flows],
                arrival=c.arrival, label=c.label, deadline=2.0,
            )
            for c in workload
        ]
        sched = DeadlineEDF()
        first = run_policy(sched, deadlined, SETUP)
        second = run_policy(sched, deadlined, SETUP)
        assert _fingerprint(first) == _fingerprint(second)

    def test_run_many_with_instances_matches_names(self):
        workload = _workload(seed=11)
        by_instance = run_many([FVDFScheduler(), make_scheduler("sebf")],
                               workload, SETUP)
        by_name = run_many(["fvdf", "sebf"], workload, SETUP)
        for key in by_name:
            assert _fingerprint(by_instance[key]) == _fingerprint(by_name[key])
