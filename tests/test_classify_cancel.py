"""Coflow classification bins, engine cancellation, speculative execution."""

import numpy as np
import pytest

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import make_scheduler
from repro.traces.classify import (
    BINS,
    ClassifierConfig,
    bin_counts,
    cct_by_bin,
    classify_coflow,
    speedup_by_bin,
)
from repro.units import MB


def cf(length, width, **kw):
    return Coflow([Flow(0, i % 4, length) for i in range(width)], **kw)


class TestClassification:
    def test_four_bins(self):
        cfg = ClassifierConfig(length_threshold=5 * MB, width_threshold=50)
        assert classify_coflow(cf(1 * MB, 2), cfg) == "SN"
        assert classify_coflow(cf(50 * MB, 2), cfg) == "LN"
        assert classify_coflow(cf(1 * MB, 60), cfg) == "SW"
        assert classify_coflow(cf(50 * MB, 60), cfg) == "LW"

    def test_length_is_longest_flow(self):
        c = Coflow([Flow(0, 0, 1 * MB), Flow(0, 1, 100 * MB)])
        assert classify_coflow(c) == "LN"

    def test_bin_counts(self):
        counts = bin_counts([cf(1 * MB, 2), cf(1 * MB, 2), cf(50 * MB, 60)])
        assert counts["SN"] == 2
        assert counts["LW"] == 1
        assert set(counts) == set(BINS)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ClassifierConfig(length_threshold=0)

    def test_cct_and_speedup_by_bin(self):
        """Classify real simulation results and compare two policies."""
        def workload():
            return [
                cf(1 * MB, 2, label="mouse", arrival=0.0),
                cf(40 * MB, 3, label="elephant", arrival=0.0),
            ]

        def run(policy):
            sim = SliceSimulator(BigSwitch(4, 10 * MB), make_scheduler(policy),
                                 slice_len=0.01)
            sim.submit_many(workload())
            return sim.run().coflow_results

        sebf, fifo = run("sebf"), run("coflow-fifo")
        by_bin = cct_by_bin(sebf)
        assert "SN" in by_bin and "LN" in by_bin
        sp = speedup_by_bin(fifo, sebf)
        assert all(v > 0 for v in sp.values())

    def test_classify_result_object(self):
        sim = SliceSimulator(BigSwitch(2, 1.0), make_scheduler("sebf"),
                             slice_len=0.01)
        sim.submit(Coflow([Flow(0, 0, 1.0)]))
        res = sim.run()
        assert classify_coflow(res.coflow_results[0]) == "SN"


class TestCancellation:
    def make_sim(self):
        sim = SliceSimulator(BigSwitch(2, 1.0), make_scheduler("sebf"),
                             slice_len=0.01)
        return sim

    def test_cancel_active_coflow_frees_the_port(self):
        sim = self.make_sim()
        hog = Coflow([Flow(0, 0, 100.0)], label="hog")
        later = Coflow([Flow(0, 0, 1.0)], arrival=1.0, label="later")
        sim.submit_many([hog, later])
        sim.run(until=0.5)
        n = sim.cancel_coflow(hog.coflow_id)
        assert n == 1
        res = sim.run()
        labels = {c.label for c in res.coflow_results}
        assert labels == {"later"}  # the hog never completes
        by_label = {c.label: c for c in res.coflow_results}
        assert by_label["later"].cct == pytest.approx(1.0, abs=0.05)
        assert sim.cancelled_coflows == {hog.coflow_id}

    def test_cancel_pending_coflow_never_activates(self):
        sim = self.make_sim()
        future = Coflow([Flow(0, 0, 5.0)], arrival=10.0)
        now = Coflow([Flow(1, 1, 1.0)])
        sim.submit_many([future, now])
        sim.cancel_coflow(future.coflow_id)
        res = sim.run()
        assert len(res.coflow_results) == 1
        assert res.makespan == pytest.approx(1.0)

    def test_finished_flows_keep_results(self):
        sim = self.make_sim()
        c = Coflow([Flow(0, 0, 1.0), Flow(1, 1, 50.0)], label="mixed")
        sim.submit(c)
        sim.run(until=2.0)  # first flow done, second still going
        sim.cancel_coflow(c.coflow_id)
        res = sim.run()
        assert res.coflow_results == []  # coflow itself never completes
        assert len(res.flow_results) == 1  # but the finished flow is kept
        assert res.flow_results[0].size == 1.0

    def test_cancel_stamps_cancellation_time(self):
        """Regression: cancelled flows used to keep ``_finish == 0.0`` (and
        pending ones a stale ``_start``), indistinguishable from flows that
        finished at t=0.  Cancellation must stamp the abort instant and
        emit a ``cancel`` trace record."""
        from repro.obs import Observability

        obs = Observability()
        sim = SliceSimulator(BigSwitch(2, 1.0), make_scheduler("sebf"),
                             slice_len=0.01, obs=obs)
        active = Coflow([Flow(0, 0, 100.0)], label="active")
        pending = Coflow([Flow(1, 1, 1.0)], arrival=5.0, label="pending")
        sim.submit_many([active, pending])
        sim.run(until=0.5)
        sim.cancel_coflow(active.coflow_id)
        sim.cancel_coflow(pending.coflow_id)
        g_active = int(sim._cf_first[sim._coflows[active.coflow_id]])
        g_pending = int(sim._cf_first[sim._coflows[pending.coflow_id]])
        assert sim._finish[g_active] == pytest.approx(0.5)
        assert sim._finish_phys[g_active] == pytest.approx(0.5)
        # the never-started flow gets start == finish == cancellation time
        assert sim._start[g_pending] == pytest.approx(0.5)
        assert sim._finish[g_pending] == pytest.approx(0.5)
        recs = obs.tracer.of_kind("cancel")
        assert [(r.data["coflow_id"], r.data["n_flows"]) for r in recs] == [
            (active.coflow_id, 1),
            (pending.coflow_id, 1),
        ]
        assert all(r.t == pytest.approx(0.5) for r in recs)
        assert obs.metrics.value("engine.cancellations") == 2

    def test_cancel_unknown_or_complete(self):
        sim = self.make_sim()
        c = Coflow([Flow(0, 0, 1.0)])
        sim.submit(c)
        with pytest.raises(ConfigurationError, match="unknown"):
            sim.cancel_coflow(999_999)
        sim.run()
        with pytest.raises(ConfigurationError, match="already completed"):
            sim.cancel_coflow(c.coflow_id)

    def test_cancel_from_completion_callback(self):
        """A job-abort pattern: when coflow A finishes, kill coflow B."""
        sim = self.make_sim()
        a = Coflow([Flow(1, 1, 1.0)], label="a")
        b = Coflow([Flow(0, 0, 50.0)], label="b")
        sim.submit_many([a, b])

        def on_done(cr):
            if cr.label == "a":
                sim.cancel_coflow(b.coflow_id)

        sim.on_coflow_complete(on_done)
        res = sim.run()
        assert {c.label for c in res.coflow_results} == {"a"}
        assert res.makespan < 5.0


class TestSpeculation:
    def test_speculation_caps_straggler_tail(self):
        from repro.cluster.failures import FailureModel

        rng1, rng2 = np.random.default_rng(4), np.random.default_rng(4)
        plain = FailureModel(straggler_prob=1.0, straggler_slowdown=10.0)
        spec = FailureModel(straggler_prob=1.0, straggler_slowdown=10.0,
                            speculative=True)
        d_plain, _, _ = plain.stage_time(1.0, 4, rng1)
        d_spec, _, _ = spec.stage_time(1.0, 4, rng2)
        assert d_plain == pytest.approx(10.0)
        assert d_spec == pytest.approx(2.0)

    def test_speculation_noop_without_stragglers(self, rng):
        from repro.cluster.failures import FailureModel

        fm = FailureModel(speculative=True)
        d, _, _ = fm.stage_time(3.0, 2, rng)
        assert d == pytest.approx(3.0)
