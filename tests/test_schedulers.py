"""Baseline scheduler behaviour beyond the Fig. 4 exactness checks."""

import numpy as np
import pytest

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import (
    SCF,
    NCF,
    LCF,
    SEBF,
    CoflowFIFO,
    FlowFIFO,
    FlowSRTF,
    make_scheduler,
    scheduler_names,
)


def run(scheduler, coflows, n_ports=4, bandwidth=1.0, slice_len=0.01):
    sim = SliceSimulator(BigSwitch(n_ports, bandwidth), scheduler, slice_len=slice_len)
    sim.submit_many(coflows)
    return sim.run()


class TestRegistry:
    def test_all_names_construct(self):
        for name in scheduler_names():
            s = make_scheduler(name)
            assert hasattr(s, "schedule")

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("totally-new-policy")

    def test_case_insensitive(self):
        assert make_scheduler("SEBF").name == "sebf"


class TestFlowFIFO:
    def test_head_of_line_blocking(self):
        """A huge first flow blocks a tiny one on the same port — the FIFO
        pathology the paper calls out."""
        big = Coflow([Flow(0, 0, 100.0, flow_id=1000)], arrival=0.0)
        small = Coflow([Flow(0, 0, 1.0, flow_id=1001)], arrival=0.0)
        res = run(FlowFIFO(), [big, small])
        fct = {f.size: f.fct for f in res.flow_results}
        assert fct[100.0] == pytest.approx(100.0)
        assert fct[1.0] == pytest.approx(101.0)


class TestFlowSRTF:
    def test_preempts_for_smaller_flow(self):
        big = Coflow([Flow(0, 0, 100.0)], arrival=0.0)
        small = Coflow([Flow(0, 0, 1.0)], arrival=10.0)
        res = run(FlowSRTF(), [big, small])
        fct = {f.size: f.fct for f in res.flow_results}
        assert fct[1.0] == pytest.approx(1.0)  # preempts immediately
        assert fct[100.0] == pytest.approx(101.0)


class TestSEBF:
    def test_prioritises_small_bottleneck(self):
        # C1 bottleneck 10 s, C2 bottleneck 2 s: C2 should not wait.
        c1 = Coflow([Flow(0, 0, 10.0)], arrival=0.0)
        c2 = Coflow([Flow(0, 0, 2.0)], arrival=0.0)
        res = run(SEBF(), [c1, c2])
        cct = {c.coflow_id: c.cct for c in res.coflow_results}
        assert cct[c2.coflow_id] == pytest.approx(2.0)
        assert cct[c1.coflow_id] == pytest.approx(12.0)

    def test_madd_variant_runs(self):
        c1 = Coflow([Flow(0, 0, 4.0), Flow(1, 1, 2.0)], arrival=0.0)
        c2 = Coflow([Flow(0, 1, 2.0)], arrival=0.0)
        res = run(SEBF(rate_policy="madd"), [c1, c2])
        assert len(res.coflow_results) == 2
        # MADD is work-conserving with backfill: same makespan region
        assert res.makespan <= 8.0 + 1e-6

    def test_bad_rate_policy(self):
        with pytest.raises(ConfigurationError):
            SEBF(rate_policy="wishful")


class TestSimpleOrders:
    def make_pair(self):
        # small-total but wide coflow vs large-total narrow coflow
        wide = Coflow(
            [Flow(0, 0, 1.0), Flow(1, 1, 1.0), Flow(2, 2, 1.0)], arrival=0.0,
            label="wide",
        )
        narrow = Coflow([Flow(0, 0, 4.0)], arrival=0.0, label="narrow")
        return wide, narrow

    def test_scf_prefers_small_total(self):
        wide, narrow = self.make_pair()
        res = run(SCF(), [wide, narrow])
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["wide"] == pytest.approx(1.0)
        assert cct["narrow"] == pytest.approx(5.0)

    def test_ncf_prefers_narrow(self):
        wide, narrow = self.make_pair()
        res = run(NCF(), [wide, narrow])
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["narrow"] == pytest.approx(4.0)
        assert cct["wide"] == pytest.approx(5.0)  # flow on port 0 waits

    def test_lcf_prefers_uncontended(self):
        # A touches ports {0}; B touches {0,1}; C touches {1}.
        a = Coflow([Flow(0, 0, 2.0)], label="a")
        b = Coflow([Flow(0, 0, 2.0), Flow(1, 1, 2.0)], label="b")
        c = Coflow([Flow(1, 1, 2.0)], label="c")
        res = run(LCF(), [a, b, c])
        cct = {x.label: x.cct for x in res.coflow_results}
        # b shares ports with both a and c -> most contended -> last
        assert cct["b"] == pytest.approx(4.0)
        assert cct["a"] == pytest.approx(2.0)
        assert cct["c"] == pytest.approx(2.0)

    def test_coflow_fifo_orders_by_arrival(self):
        first = Coflow([Flow(0, 0, 5.0)], arrival=0.0, label="first")
        second = Coflow([Flow(0, 0, 1.0)], arrival=0.5, label="second")
        res = run(CoflowFIFO(), [first, second])
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["first"] == pytest.approx(5.0)
        assert cct["second"] == pytest.approx(5.5)


class TestCCTInvariant:
    @pytest.mark.parametrize("name", ["fifo", "fair", "srtf", "sebf", "scf", "fvdf"])
    def test_cct_is_max_fct(self, name):
        """Eq. 8: a coflow's CCT equals the max FCT of its member flows."""
        rng = np.random.default_rng(7)
        coflows = []
        for k in range(5):
            flows = [
                Flow(int(rng.integers(0, 4)), int(rng.integers(0, 4)),
                     float(rng.uniform(0.5, 5.0)))
                for _ in range(int(rng.integers(1, 5)))
            ]
            coflows.append(Coflow(flows, arrival=float(k) * 0.5))
        res = run(make_scheduler(name), coflows)
        assert len(res.coflow_results) == 5
        for cr in res.coflow_results:
            max_fct = max(f.finish for f in cr.flow_results)
            assert cr.finish == pytest.approx(max_fct)
