"""Edge cases across modules that the mainline tests don't reach."""

import numpy as np
import pytest

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError, ProtocolError
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import make_scheduler


class TestEngineEdges:
    def test_run_after_completion_is_idempotent(self):
        sim = SliceSimulator(BigSwitch(1, 1.0), make_scheduler("sebf"),
                             slice_len=0.01)
        sim.submit(Coflow([Flow(0, 0, 1.0)]))
        first = sim.run()
        second = sim.run()
        assert second.makespan == first.makespan
        assert len(second.flow_results) == 1

    def test_empty_run(self):
        sim = SliceSimulator(BigSwitch(1, 1.0), make_scheduler("sebf"))
        res = sim.run()
        assert res.flow_results == []
        assert res.makespan == 0.0

    def test_submit_during_run_via_callback(self):
        """A completion callback submits follow-up work (the cluster
        simulator's pattern) and the run drains it too when re-invoked."""
        sim = SliceSimulator(BigSwitch(1, 1.0), make_scheduler("sebf"),
                             slice_len=0.01)

        def chain(cr):
            if cr.label == "first":
                sim.submit(Coflow([Flow(0, 0, 1.0)], arrival=sim.now,
                                  label="second"))

        sim.on_coflow_complete(chain)
        sim.submit(Coflow([Flow(0, 0, 1.0)], label="first"))
        res = sim.run()
        assert {c.label for c in res.coflow_results} == {"first", "second"}

    def test_very_large_sizes_do_not_overflow(self):
        from repro.units import TB, gbps

        sim = SliceSimulator(BigSwitch(1, gbps(100)), make_scheduler("sebf"),
                             slice_len=0.01)
        sim.submit(Coflow([Flow(0, 0, 10 * TB)]))
        res = sim.run()
        assert res.flow_results[0].fct == pytest.approx(
            10 * TB / gbps(100), rel=1e-6
        )

    def test_many_tiny_flows_one_slice_each(self):
        """100 sub-slice flows on one port: each occupies (at least) one
        slice — total ~100 slices, the paper's slice-waste in bulk."""
        sim = SliceSimulator(BigSwitch(1, 1.0), make_scheduler("srtf"),
                             slice_len=0.01)
        for k in range(100):
            sim.submit(Coflow([Flow(0, 0, 1e-4)]))
        res = sim.run()
        assert res.makespan >= 100 * 0.01 - 1e-9


class TestSwallowProtocolEdges:
    def make_ctx(self):
        from repro.swallow import SwallowContext

        SwallowContext.reset_instance()
        return SwallowContext(num_nodes=2, bandwidth=1000.0)

    def test_double_pull_fails(self):
        from repro.core.flow import Flow as F
        from repro.swallow import BlockId, Executor

        ctx = self.make_ctx()
        ex = Executor(node=0, pending_flows=[F(0, 1, 100.0)])
        ref = ctx.add(ctx.aggregate(ctx.hook(ex)))
        bid = BlockId()
        ctx.push(ref, bid, b"data")
        assert ctx.pull(ref, bid) == b"data"
        with pytest.raises(ProtocolError):
            ctx.pull(ref, bid)

    def test_remove_twice_fails(self):
        from repro.core.flow import Flow as F
        from repro.swallow import BlockId, Executor

        ctx = self.make_ctx()
        ex = Executor(node=0, pending_flows=[F(0, 1, 100.0)])
        ref = ctx.add(ctx.aggregate(ctx.hook(ex)))
        bid = BlockId()
        ctx.push(ref, bid, b"x")
        ctx.pull(ref, bid)
        ctx.remove(ref)
        with pytest.raises(ProtocolError):
            ctx.remove(ref)


class TestUnitsEdges:
    def test_zero_and_negative_values(self):
        from repro import units

        assert units.bytes_to_human(0) == "0 B"
        assert units.bytes_to_human(-2 * units.GB) == "-2.00 GB"
        assert units.rate_to_human(0) == "0 bps"
        assert units.seconds_to_human(0.0) == "0.0 ms"

    def test_flow_volume_fractional_bytes_ok(self):
        """Volumes are continuous fluids: sub-byte sizes are legal."""
        f = Flow(0, 0, 0.5)
        assert f.size == 0.5
