"""The shared-memory result transport changes nothing but the pipe.

Array-bearing summaries travel out of pool workers as ``repro-shm-*``
segments plus a header-only descriptor (:mod:`repro.runner.shm`).  Two
properties are load-bearing and pinned here under real stress:

* **identity** — a 4-worker × 50-spec sweep with per-flow arrays comes
  back bit-identical (``ResultSummary.__eq__`` is exact) to the
  sequential path, and the parent really did collect through shared
  memory (the attach counter moved);
* **hygiene** — ``/dev/shm`` holds zero ``repro-shm-*`` segments after
  the pool shuts down, including when a worker raises mid-sweep and the
  runner has to drain already-exported blocks it will never consume.
"""

import glob
import os

import numpy as np
import pytest

from repro.analysis import ExperimentSetup
from repro.runner import RunSpec, WorkloadSpec, run_specs
from repro.runner import shm
from repro.traces.generator import WorkloadConfig
from repro.units import mbps

DEV_SHM = "/dev/shm"

pytestmark = pytest.mark.skipif(
    not os.path.isdir(DEV_SHM) or not shm.shm_enabled(),
    reason="no usable /dev/shm on this platform",
)


def _leaked_segments():
    return sorted(glob.glob(f"{DEV_SHM}/{shm.SHM_PREFIX}*"))


def _specs(n=50, key_prefix="cell"):
    """Tiny generated cells — regenerated in-worker, arrays shipped back."""
    cfg = WorkloadConfig(num_coflows=4, num_ports=8, width=(1, 4))
    return [
        RunSpec(
            policy="fvdf",
            workload=WorkloadSpec.generated(cfg, seed=1000 + i),
            key=f"{key_prefix}/{i}",
            arrays=True,
            setup=ExperimentSetup(
                num_ports=8, bandwidth=mbps(100), slice_len=0.01
            ),
        )
        for i in range(n)
    ]


class TestShmStress:
    def test_four_workers_fifty_specs_bit_identical_no_leaks(self):
        assert _leaked_segments() == []
        specs = _specs(50)
        seq = run_specs(specs, workers=0, cache=False)
        before = shm.ATTACHED
        par = run_specs(specs, workers=4, cache=False)
        # Collection really went out of band — every cell attached once.
        assert shm.ATTACHED - before == len(specs)
        assert [o.key for o in par] == [o.key for o in seq]
        for s, p in zip(seq, par):
            assert p.summary is not None and p.shm is None
            for name in p.summary._ARRAYS:
                arr = getattr(p.summary, name)
                assert isinstance(arr, np.ndarray)
                assert np.array_equal(arr, getattr(s.summary, name))
            assert p.summary == s.summary, p.key
        assert _leaked_segments() == []

    def test_transport_off_still_identical(self, monkeypatch):
        monkeypatch.setenv(shm.ENV_SHM, "0")
        specs = _specs(8, key_prefix="off")
        seq = run_specs(specs, workers=0, cache=False)
        before = shm.ATTACHED
        par = run_specs(specs, workers=2, cache=False)
        assert shm.ATTACHED == before  # everything pickled whole
        for s, p in zip(seq, par):
            assert p.summary == s.summary
        assert _leaked_segments() == []

    def test_worker_exception_leaves_no_segments(self):
        assert _leaked_segments() == []
        specs = _specs(12, key_prefix="boom")
        # One poisoned cell in the middle: its worker raises after several
        # healthy cells have already exported segments the parent may
        # never attach (the drain path must discard them).
        specs[7] = RunSpec(
            policy="fvdf",
            workload=WorkloadSpec.from_callable(_exploding_factory, seed=7),
            key="boom/poison",
            arrays=True,
            setup=ExperimentSetup(
                num_ports=8, bandwidth=mbps(100), slice_len=0.01
            ),
        )
        with pytest.raises(RuntimeError, match="poisoned workload"):
            run_specs(specs, workers=4, cache=False)
        assert _leaked_segments() == []


def _exploding_factory(seed):
    raise RuntimeError("poisoned workload cell")


class TestShmPrimitives:
    def test_export_attach_roundtrip(self):
        arrays = {
            "a": np.arange(7, dtype=np.float64),
            "b": np.array([], dtype=np.float64),
            "c": np.arange(12, dtype=np.int64).reshape(3, 4),
        }
        block = shm.export_arrays(arrays)
        assert block is not None
        assert block.name.startswith(shm.SHM_PREFIX)
        # Offsets are 64-byte aligned for each column.
        assert all(col.offset % 64 == 0 for col in block.columns)
        got = shm.attach_arrays(block)
        for key, arr in arrays.items():
            assert np.array_equal(got[key], arr)
            assert got[key].dtype == arr.dtype
        assert _leaked_segments() == []

    def test_discard_unlinks(self):
        block = shm.export_arrays({"x": np.ones(5)})
        assert block is not None
        shm.discard(block)
        assert _leaked_segments() == []
        shm.discard(block)  # idempotent on an already-unlinked block

    def test_export_empty_is_none(self):
        assert shm.export_arrays({}) is None
        assert shm.export_arrays({"x": None}) is None
