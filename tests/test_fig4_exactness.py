"""Exact reproduction of the paper's Fig. 4 motivating example.

The paper states the average FCT/CCT of five baseline policies on the
two-coflow 3×3 example in closed form; our engine must hit them *exactly*
(the workload is slice-grid aligned).  FVDF involves compression whose
schedule the paper does not fully specify, so for it we assert the paper's
qualitative claim — strictly better than SEBF on both metrics — and that we
land near the published 2.8/3.25.
"""

import pytest

from repro.scenarios import (
    FIG4_PAPER_NUMBERS,
    motivating_example,
    run_motivating_example,
)
from repro.schedulers import make_scheduler

EXACT = ["pff", "fair", "wss", "fifo", "pfp", "sebf"]


@pytest.mark.parametrize("name", EXACT)
def test_baseline_matches_paper_exactly(name):
    fct, cct = FIG4_PAPER_NUMBERS[name]
    res = run_motivating_example(make_scheduler(name))
    assert res.avg_fct == pytest.approx(fct, abs=1e-9), name
    assert res.avg_cct == pytest.approx(cct, abs=1e-9), name


def test_fvdf_beats_sebf_on_both_metrics():
    fvdf = run_motivating_example(make_scheduler("fvdf"))
    sebf = run_motivating_example(make_scheduler("sebf"))
    assert fvdf.avg_fct < sebf.avg_fct
    assert fvdf.avg_cct < sebf.avg_cct


def test_fvdf_close_to_paper_numbers():
    res = run_motivating_example(make_scheduler("fvdf"))
    fct, cct = FIG4_PAPER_NUMBERS["fvdf"]
    assert res.avg_fct == pytest.approx(fct, rel=0.2)
    assert res.avg_cct == pytest.approx(cct, rel=0.2)


def test_fvdf_compresses_some_traffic():
    res = run_motivating_example(make_scheduler("fvdf"))
    assert res.traffic_reduction > 0.1


def test_example_construction():
    fabric, coflows = motivating_example()
    assert fabric.num_ingress == fabric.num_egress == 3
    c1, c2 = coflows
    assert sorted(f.size for f in c1.flows) == [2, 4, 4]
    assert sorted(f.size for f in c2.flows) == [2, 3]
    # total 15 units across 3 unit-speed egress ports -> lower bound 5 s
    assert c1.size + c2.size == 15


def test_scales_with_bandwidth():
    """The example is bandwidth-normalised: numbers hold at any link speed."""
    res = run_motivating_example(make_scheduler("sebf"), bandwidth=100.0)
    assert res.avg_fct == pytest.approx(4.0, abs=1e-9)
    assert res.avg_cct == pytest.approx(4.5, abs=1e-9)


def test_coarser_slice_degrades_gracefully():
    """With δ=0.5 the grid still divides all event times; results hold."""
    res = run_motivating_example(make_scheduler("sebf"), slice_len=0.5)
    assert res.avg_fct == pytest.approx(4.0, abs=1e-9)
    res2 = run_motivating_example(make_scheduler("sebf"), slice_len=0.7)
    # off-grid slices can only delay observations, never accelerate them
    assert res2.avg_fct >= 4.0 - 1e-9
