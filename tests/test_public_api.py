"""The package's public surface: imports, __all__, README quickstart."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.core", "repro.fabric", "repro.cpu", "repro.compression",
    "repro.schedulers", "repro.traces", "repro.cluster", "repro.swallow",
    "repro.sparklite", "repro.analysis",
]


def test_version():
    assert repro.__version__ == "1.7.0"


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_all_exports_resolve(module):
    mod = importlib.import_module(module)
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.{name} in __all__ but missing"


def test_top_level_all_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name)


def test_readme_quickstart_snippet():
    """The exact code shown in README.md works."""
    from repro.units import MB, gbps

    fabric = repro.BigSwitch(num_ports=8, bandwidth=gbps(1))
    coflow = repro.Coflow([
        repro.Flow(src=0, dst=1, size=400 * MB),
        repro.Flow(src=2, dst=1, size=200 * MB),
    ])
    sim = repro.SliceSimulator(fabric, repro.FVDFScheduler())
    sim.submit(coflow)
    result = sim.run()
    assert result.avg_cct > 0
    assert 0.0 <= result.traffic_reduction < 1.0


def test_py_typed_marker_ships():
    from pathlib import Path

    assert (Path(repro.__file__).parent / "py.typed").exists()
