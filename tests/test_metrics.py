"""Metric computation: CDFs, speedups, throughput windows, filters."""

import numpy as np
import pytest

from repro.core import metrics
from repro.core.flow import FlowResult
from repro.errors import ConfigurationError


def fr(size, fct, arrival=0.0, sent=None):
    return FlowResult(
        flow_id=0, coflow_id=0, src=0, dst=0, size=size, arrival=arrival,
        start=arrival, finish=arrival + fct, finish_physical=arrival + fct,
        bytes_sent=sent if sent is not None else size, bytes_compressed_in=0.0,
    )


class TestCdf:
    def test_empirical_cdf(self):
        x, y = metrics.empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(y) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        x, y = metrics.empirical_cdf([])
        assert len(x) == len(y) == 0

    def test_cdf_at(self):
        vals = [1.0, 2.0, 3.0, 4.0]
        out = metrics.cdf_at(vals, [0.0, 2.5, 10.0])
        assert list(out) == pytest.approx([0.0, 0.5, 1.0])


class TestSpeedup:
    def test_ratio(self):
        assert metrics.speedup(4.4, 2.0) == pytest.approx(2.2)

    def test_zero_denominator(self):
        with pytest.raises(ConfigurationError):
            metrics.speedup(1.0, 0.0)


class TestFilters:
    def test_percentile_filter_drops_smallest(self):
        flows = [fr(size=s, fct=1.0) for s in np.arange(1.0, 101.0)]
        kept = metrics.filter_flows_by_size_percentile(flows, 0.95)
        assert len(kept) == pytest.approx(95, abs=1)
        assert min(f.size for f in kept) >= 5.0

    def test_keep_all(self):
        flows = [fr(1.0, 1.0)]
        assert metrics.filter_flows_by_size_percentile(flows, 1.0) == flows

    def test_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            metrics.filter_flows_by_size_percentile([], 0.0)

    def test_size_bins(self):
        flows = [fr(0.5, 1.0), fr(5.0, 2.0), fr(50.0, 3.0), fr(60.0, 5.0)]
        out = metrics.fct_by_size_bins(flows, edges=[1.0, 10.0])
        assert out["[0, 1)"] == pytest.approx(1.0)
        assert out["[1, 10)"] == pytest.approx(2.0)
        assert out["[10, inf)"] == pytest.approx(4.0)


class TestThroughput:
    def test_cumulative_windows(self):
        comps = [0.5, 1.5, 1.6, 3.5]
        cum = metrics.throughput_windows(comps, window=1.0, num_windows=4)
        assert list(cum) == [1, 3, 3, 4]

    def test_rates(self):
        comps = [0.5, 1.5, 1.6, 3.5]
        mx, mn, avg = metrics.completion_rates(comps, window=1.0, num_windows=4)
        assert mx == pytest.approx(2.0)
        assert mn == pytest.approx(0.0)
        assert avg == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            metrics.throughput_windows([], window=0.0, num_windows=1)


class TestSummaries:
    def test_traffic_summary(self):
        t = metrics.TrafficSummary(original=100.0, sent=60.0)
        assert t.reduction == pytest.approx(0.4)

    def test_compare_speedups(self):
        a = metrics.RunSummary("a", avg_fct=2.0, avg_cct=4.0, makespan=10.0,
                               traffic=metrics.TrafficSummary(1, 1))
        b = metrics.RunSummary("b", avg_fct=1.0, avg_cct=2.0, makespan=8.0,
                               traffic=metrics.TrafficSummary(1, 1))
        out = metrics.compare([a, b], baseline="a", metric="avg_cct")
        assert out["b"] == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            metrics.compare([a], baseline="zzz")
