"""Dependency-free SVG chart rendering."""

import re
import xml.etree.ElementTree as ET

import pytest

from repro.analysis.svg import Series, bar_chart, cdf_chart, line_chart
from repro.errors import ConfigurationError


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestSeries:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Series("bad", [1, 2], [1])
        with pytest.raises(ConfigurationError):
            Series("empty", [], [])


class TestLineChart:
    def make(self, **kw):
        return line_chart(
            [Series("a", [0, 1, 2], [0.0, 1.0, 4.0]),
             Series("b", [0, 1, 2], [4.0, 1.0, 0.0])],
            title="T", xlabel="x", ylabel="y", **kw,
        )

    def test_is_valid_xml_with_polylines(self):
        root = parse(self.make())
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) == 2

    def test_legend_and_labels_present(self):
        svg = self.make()
        for text in ("T", "x", "y", "a", "b"):
            assert f">{text}<" in svg

    def test_y_axis_inverted(self):
        """Higher y values map to smaller pixel y."""
        svg = line_chart([Series("s", [0, 1], [0.0, 10.0])])
        pts = re.search(r'polyline points="([^"]+)"', svg).group(1)
        (x1, y1), (x2, y2) = [tuple(map(float, p.split(","))) for p in pts.split()]
        assert y2 < y1  # the larger value is drawn higher up
        assert x2 > x1

    def test_logx(self):
        svg = line_chart(
            [Series("s", [1, 10, 100], [1.0, 2.0, 3.0])], logx=True
        )
        pts = re.search(r'polyline points="([^"]+)"', svg).group(1)
        xs = [float(p.split(",")[0]) for p in pts.split()]
        # log spacing: equal pixel gaps between decades.
        assert xs[1] - xs[0] == pytest.approx(xs[2] - xs[1], abs=0.6)

    def test_logx_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            line_chart([Series("s", [0, 1], [1, 2])], logx=True)

    def test_writes_file(self, tmp_path):
        path = tmp_path / "chart.svg"
        self.make(dest=path)
        assert path.read_text().startswith("<svg")

    def test_needs_series(self):
        with pytest.raises(ConfigurationError):
            line_chart([])

    def test_escaping(self):
        svg = line_chart([Series("a<b&c", [0, 1], [0, 1])])
        assert "a&lt;b&amp;c" in svg
        parse(svg)  # still valid XML


class TestCdfChart:
    def test_step_curves(self):
        svg = cdf_chart({"x": [1.0, 2.0, 3.0], "y": [2.0, 2.5]})
        root = parse(svg)
        assert len(root.findall(".//{http://www.w3.org/2000/svg}polyline")) == 2
        assert "CDF" in svg

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            cdf_chart({})
        with pytest.raises(ConfigurationError):
            cdf_chart({"x": []})


class TestBarChart:
    def test_bars_match_labels(self):
        svg = bar_chart(["a", "b", "c"], [1.0, 2.0, 3.0], title="bars")
        root = parse(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert len(rects) == 4  # background + 3 bars

    def test_bar_heights_proportional(self):
        svg = bar_chart(["a", "b"], [1.0, 2.0])
        root = parse(svg)
        bars = root.findall(".//{http://www.w3.org/2000/svg}rect")[1:]
        h1, h2 = (float(b.get("height")) for b in bars)
        assert h2 == pytest.approx(2 * h1, rel=1e-3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            bar_chart([], [])

    def test_writes_file(self, tmp_path):
        path = tmp_path / "bars.svg"
        bar_chart(["a"], [1.0], dest=path)
        assert path.exists()
