"""Scratch-arena lifecycle: reuse, growth, generations, value neutrality.

The arenas of :mod:`repro.core.kernels.arena` back the decision hot
path's round scratch (``fill_shard``/``_round_counts``), the backfill
rounds of ``priority_fill`` and the simulator's view gathers.  Their
contract is deliberately thin — ``take`` hands out *unspecified* bytes
and every call site fully overwrites before reading — so what these
tests pin down is the machinery around that contract:

* buffers are reused (``grows`` stabilizes once warm) and grow
  geometrically when forced;
* dtype is part of the buffer identity — no silent aliasing between a
  float and an index buffer under the same name;
* ``invalidate`` stamps a new generation but keeps capacity;
  ``clear`` also drops the buffers (eviction must not pin peak scratch);
* the simulator's view scratch follows its regroup lifecycle —
  invalidated by the full rebuilds after ``cancel_coflow`` and cleared
  by ``drain_retired``'s state eviction;
* ``REPRO_ARENA=0`` / ``set_enabled(False)`` degrade every accessor to
  plain ``np.empty`` — and results are bit-identical either way, which
  is what makes the arena a pure allocation knob.
"""

import threading

import numpy as np
import pytest

from repro.core import rate_allocation as ra
from repro.core.kernels import arena


@pytest.fixture(autouse=True)
def _restore_arena_mode():
    yield
    arena.set_enabled(None)


# -- ScratchArena mechanics ---------------------------------------------------


def test_take_reuses_buffer_and_grows_geometrically():
    ar = arena.ScratchArena()
    a = ar.take("x", 100)
    a[:] = 0.0
    assert a.size == 100 and a.dtype == np.float64
    assert ar.grows == 1 and ar.takes == 1
    b = ar.take("x", 80)
    assert ar.grows == 1  # same buffer, no reallocation
    assert np.shares_memory(a, b)
    c = ar.take("x", 150)  # forced growth: 2 * old capacity, not 150
    c[:] = 1.0
    assert ar.grows == 2
    assert not np.shares_memory(a, c)
    slot = ("x", np.dtype(np.float64).str)
    assert ar._bufs[slot].size == 200
    # ...and the grown buffer is itself reused afterwards.
    d = ar.take("x", 200)
    assert ar.grows == 2 and np.shares_memory(c, d)


def test_take_never_hands_out_less_than_the_floor():
    ar = arena.ScratchArena()
    ar.take("tiny", 3)
    slot = ("tiny", np.dtype(np.float64).str)
    assert ar._bufs[slot].size == arena._MIN_BUF


def test_dtype_is_part_of_the_buffer_identity():
    ar = arena.ScratchArena()
    f = ar.take("k", 32, np.float64)
    i = ar.take("k", 32, np.intp)
    m = ar.take("k", 32, np.bool_)
    assert ar.grows == 3
    f[:] = 1.5
    i[:] = 7
    m[:] = True
    assert f.dtype == np.float64 and i.dtype == np.intp and m.dtype == np.bool_
    assert not np.shares_memory(f, i)
    assert (f == 1.5).all() and (i == 7).all()  # no cross-dtype clobber


def test_invalidate_keeps_capacity_clear_drops_it():
    ar = arena.ScratchArena()
    ar.take("x", 500)
    assert ar.generation == 0
    ar.invalidate()
    assert ar.generation == 1
    ar.take("x", 500)
    assert ar.grows == 1  # capacity survived the generation bump
    ar.clear()
    assert ar.generation == 2
    assert not ar._bufs
    ar.take("x", 500)
    assert ar.grows == 2  # eviction really dropped the buffer


# -- enabled/disabled switching ----------------------------------------------


def test_set_enabled_false_degrades_to_null_arena():
    arena.set_enabled(False)
    ar = arena.new_arena()
    assert isinstance(ar, arena.NullArena)
    assert arena.local_arena() is arena._NULL
    a = ar.take("x", 10)
    b = ar.take("x", 10)
    assert not np.shares_memory(a, b)  # fresh np.empty every time
    ar.invalidate()
    ar.clear()
    assert ar.generation == 0  # null arenas have no lifecycle
    arena.set_enabled(None)
    assert isinstance(arena.new_arena(), arena.ScratchArena)


def test_env_variable_disables_arenas(monkeypatch):
    arena.set_enabled(None)
    monkeypatch.setenv(arena.ENV_ARENA, "0")
    assert not arena.enabled()
    assert isinstance(arena.new_arena(), arena.NullArena)
    monkeypatch.setenv(arena.ENV_ARENA, "1")
    assert arena.enabled()
    # the programmatic override beats the environment
    arena.set_enabled(False)
    assert not arena.enabled()


def test_local_arena_is_thread_local():
    arena.set_enabled(True)
    mine = arena.local_arena()
    assert arena.local_arena() is mine  # stable within a thread
    theirs = []
    t = threading.Thread(target=lambda: theirs.append(arena.local_arena()))
    t.start()
    t.join()
    assert theirs and theirs[0] is not mine


# -- hot-path adoption: warm arenas stop allocating ---------------------------


def _contended_fill(n=400, seed=2):
    rng = np.random.default_rng(seed)
    src = rng.integers(0, 6, size=n)
    dst = rng.integers(0, 6, size=n)
    ci = np.full(6, 3.0)
    co = np.full(6, 2.5)
    dims = ra.build_dims(src, dst, ci, co, None)
    perm = rng.permutation(n).astype(np.intp)
    # Heavily oversubscribed on every port: the contended round loop
    # (the arena's customer) must actually run.
    demands = rng.uniform(0.05, 0.5, size=n)
    return ra.priority_fill(perm, dims, demands=demands, n=n)


def test_round_scratch_stops_growing_once_warm():
    """Two identical contended fills on the serial kernel: the second
    must be served entirely from warm buffers (grows frozen, takes
    rising) — the reuse across runs/fresh() that the arena exists for."""
    from repro.core import kernels

    arena.set_enabled(True)
    old_tail = ra._SCALAR_TAIL
    ra._SCALAR_TAIL = 0  # keep everything on the vectorized arena path
    try:
        with kernels.use_kernel("python"):
            first = _contended_fill()
            ar = arena.local_arena()
            grows_after_warmup = ar.grows
            takes_after_warmup = ar.takes
            assert takes_after_warmup > 0  # the fill really used the arena
            second = _contended_fill()
    finally:
        ra._SCALAR_TAIL = old_tail
    assert np.array_equal(first, second)
    assert ar.grows == grows_after_warmup
    assert ar.takes > takes_after_warmup


def test_fill_results_identical_with_arena_disabled():
    from repro.core import kernels

    arena.set_enabled(True)
    with kernels.use_kernel("python"):
        on = _contended_fill(seed=4)
    arena.set_enabled(False)
    with kernels.use_kernel("python"):
        off = _contended_fill(seed=4)
    assert np.array_equal(on, off)


# -- simulator view scratch lifecycle ----------------------------------------


def _make_sim():
    from repro.core.coflow import Coflow
    from repro.core.flow import Flow
    from repro.core.simulator import SliceSimulator
    from repro.fabric.bigswitch import BigSwitch
    from repro.schedulers import make_scheduler

    sim = SliceSimulator(
        BigSwitch(4, 1.0), make_scheduler("sebf"), slice_len=0.01
    )
    coflows = [
        Coflow([Flow(i % 4, (i + 1) % 4, 2.0 + i)], label=f"c{i}")
        for i in range(6)
    ]
    sim.submit_many(coflows)
    return sim, coflows


def test_view_scratch_invalidated_by_cancel_rebuild():
    """``cancel_coflow`` marks the grouping dirty; the next decision's
    full regroup must stamp a new scratch generation (the cached
    indices the buffers were sized against are gone)."""
    arena.set_enabled(True)
    sim, coflows = _make_sim()
    sim.run(until=0.5)
    gen = sim._view_scratch.generation
    assert sim.cancel_coflow(coflows[0].coflow_id) == 1
    sim.run(until=1.0)  # triggers the full rebuild
    assert sim._view_scratch.generation > gen


def test_view_scratch_invalidated_by_midrun_submit():
    from repro.core.coflow import Coflow
    from repro.core.flow import Flow

    arena.set_enabled(True)
    sim, _ = _make_sim()
    sim.submit(Coflow([Flow(2, 3, 4.0)], arrival=1.0, label="mid"))
    # Submit "late" mid-loop at the exact decision where "mid" activates:
    # equal arrivals landing in *separate* due batches are the one
    # arrival pattern the append delta cannot handle, so the engine falls
    # back to the full regroup (and its invalidate).
    fired = []

    def resubmit(t):
        if t >= 1.0 and not fired:
            fired.append(t)
            sim.submit(Coflow([Flow(0, 1, 1.0)], arrival=t, label="late"))

    sim.on_decision(resubmit)
    sim.run(until=0.5)
    gen = sim._view_scratch.generation
    sim.run(until=2.0)
    assert fired
    assert sim._view_scratch.generation > gen


def test_view_scratch_cleared_by_eviction():
    """``drain_retired`` shrinks the world; the arena must drop its
    peak-sized buffers, not pin them forever."""
    arena.set_enabled(True)
    sim, _ = _make_sim()
    sim.run(until=3.0)
    assert sim._view_scratch._bufs  # the gathers actually used it
    gen = sim._view_scratch.generation
    sim.drain_retired()
    assert not sim._view_scratch._bufs
    assert sim._view_scratch.generation > gen


def test_simulation_identical_with_arena_disabled():
    """End to end: fct/cct/makespan are bitwise unchanged by the arena
    — it is an allocation knob, never a value knob."""
    def run():
        sim, _ = _make_sim()
        return sim.run()

    arena.set_enabled(True)
    on = run()
    arena.set_enabled(False)
    off = run()
    assert np.array_equal(on.fct_array, off.fct_array)
    assert np.array_equal(on.cct_array, off.cct_array)
    assert on.makespan == off.makespan
