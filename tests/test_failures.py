"""Failure and straggler injection in the cluster simulator."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterSimulator, FailureModel, NO_FAILURES
from repro.errors import ConfigurationError
from repro.schedulers import make_scheduler
from repro.traces.spark import get_profile
from repro.units import MB, gbps

from tests.test_cluster import small_job


def run_cluster(jobs, failures=NO_FAILURES, seed=0, scheduler="sebf"):
    cfg = ClusterConfig(num_nodes=8, bandwidth=gbps(1), failures=failures, seed=seed)
    sim = ClusterSimulator(cfg, make_scheduler(scheduler))
    sim.submit_jobs(jobs)
    return sim.run()


class TestFailureModel:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FailureModel(task_failure_prob=1.0)
        with pytest.raises(ConfigurationError):
            FailureModel(straggler_prob=-0.1)
        with pytest.raises(ConfigurationError):
            FailureModel(max_retries=-1)
        with pytest.raises(ConfigurationError):
            FailureModel(straggler_slowdown=0.5)

    def test_no_failures_is_identity(self, rng):
        dur, attempts, failed = NO_FAILURES.stage_time(10.0, 4, rng)
        assert dur == 10.0
        assert attempts == 4
        assert not failed

    def test_retries_extend_duration(self):
        fm = FailureModel(task_failure_prob=0.9, max_retries=5)
        rng = np.random.default_rng(1)
        dur, attempts, _ = fm.stage_time(1.0, 4, rng)
        assert dur > 1.0
        assert attempts > 4

    def test_certain_failure_marks_failed(self):
        # max_retries=0 and very high failure prob: some task exhausts.
        fm = FailureModel(task_failure_prob=0.99, max_retries=0)
        rng = np.random.default_rng(2)
        _, _, failed = fm.stage_time(1.0, 8, rng)
        assert failed

    def test_stragglers_stretch_the_tail(self):
        fm = FailureModel(straggler_prob=1.0, straggler_slowdown=4.0)
        rng = np.random.default_rng(3)
        dur, _, failed = fm.stage_time(2.0, 4, rng)
        assert dur == pytest.approx(8.0)
        assert not failed

    def test_deterministic_under_seed(self):
        fm = FailureModel(task_failure_prob=0.3, straggler_prob=0.3)
        a = fm.stage_time(1.0, 10, np.random.default_rng(7))
        b = fm.stage_time(1.0, 10, np.random.default_rng(7))
        assert a == b

    def test_stage_time_validation(self, rng):
        with pytest.raises(ConfigurationError):
            NO_FAILURES.stage_time(1.0, 0, rng)


class TestClusterWithFailures:
    def test_failures_increase_jct(self):
        clean = run_cluster([small_job(scale=1e-2)], seed=5)
        # retry budget generous enough that the job always completes
        flaky = run_cluster(
            [small_job(scale=1e-2)],
            failures=FailureModel(task_failure_prob=0.6, max_retries=30),
            seed=5,
        )
        assert flaky.failed_jobs == 0
        assert flaky.avg_jct > clean.avg_jct
        assert all(j.map_attempts > j.spec.num_mappers for j in flaky.job_results)

    def test_job_aborts_when_retries_exhausted(self):
        res = run_cluster(
            [small_job(scale=1e-2) for _ in range(6)],
            failures=FailureModel(task_failure_prob=0.95, max_retries=0),
            seed=3,
        )
        assert res.failed_jobs >= 1
        # every submitted job is accounted for, failed or not.
        assert len(res.job_results) == 6
        # failed jobs never reach the fabric from the map stage.
        for j in res.job_results:
            if j.failed and j.shuffle_stage.end == 0.0:
                assert j.shuffle_bytes_sent == 0.0

    def test_failed_jobs_excluded_from_metrics(self):
        res = run_cluster(
            [small_job(scale=1e-2) for _ in range(6)],
            failures=FailureModel(task_failure_prob=0.95, max_retries=0),
            seed=3,
        )
        ok = res.successful
        assert len(ok) + res.failed_jobs == 6
        if ok:
            assert res.avg_jct > 0
        assert len(res.completions()) == len(ok)

    def test_stragglers_only_never_fail_jobs(self):
        res = run_cluster(
            [small_job(scale=1e-2) for _ in range(4)],
            failures=FailureModel(straggler_prob=0.5, straggler_slowdown=3.0),
            seed=9,
        )
        assert res.failed_jobs == 0
        assert len(res.successful) == 4

    def test_cores_released_even_on_failure(self):
        cfg = ClusterConfig(
            num_nodes=4,
            failures=FailureModel(task_failure_prob=0.95, max_retries=0),
            seed=3,
        )
        sim = ClusterSimulator(cfg, make_scheduler("sebf"))
        sim.submit_jobs([small_job(scale=1e-2) for _ in range(4)])
        sim.run()
        assert np.all(sim.cpu.claimed == 0)
