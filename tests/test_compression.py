"""Compression substrate: codecs, size-dependent ratios, engine."""

import numpy as np
import pytest

from repro.compression.codecs import (
    TABLE_II,
    Codec,
    default_codec,
    get_codec,
    register_codec,
)
from repro.compression.engine import CompressionEngine
from repro.compression.model import (
    RATIO_MAX,
    RATIO_MIN,
    TABLE_III_ANCHORS,
    SizeDependentRatio,
    table3_ratio,
)
from repro.errors import ConfigurationError
from repro.units import GB, KB, MB, gbps, mbps


class TestCodecs:
    def test_table2_complete(self):
        assert set(TABLE_II) >= {"lz4", "lzo", "snappy", "lzf", "zstd"}

    def test_default_is_lz4(self):
        assert default_codec().name == "lz4"

    def test_lookup_aliases_and_case(self):
        assert get_codec("LZ4").name == "lz4"
        assert get_codec("Sanppy").name == "snappy"  # the paper's typo
        assert get_codec("Zstandard").name == "zstd"

    def test_unknown_codec(self):
        with pytest.raises(ConfigurationError, match="unknown codec"):
            get_codec("gzip9000")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Codec("bad", speed=-1, decompression_speed=1, ratio=0.5)
        with pytest.raises(ConfigurationError):
            Codec("bad", speed=1, decompression_speed=1, ratio=1.5)

    def test_eq3_decision_boundary(self):
        """LZ4 beats 1 GbE but not 10 GbE — the paper's key observation."""
        lz4 = get_codec("lz4")
        assert lz4.beats_bandwidth(gbps(1))
        assert not lz4.beats_bandwidth(gbps(10))
        assert lz4.beats_bandwidth(mbps(100))

    def test_disposal_speed(self):
        c = Codec("c", speed=100.0, decompression_speed=200.0, ratio=0.4)
        assert c.disposal_speed == pytest.approx(60.0)

    def test_register_codec(self):
        c = Codec("custom-test", speed=1.0, decompression_speed=1.0, ratio=0.5)
        register_codec(c)
        assert get_codec("custom-test") is c
        with pytest.raises(ConfigurationError):
            register_codec(c)
        register_codec(c.with_ratio(0.4), overwrite=True)
        assert get_codec("custom-test").ratio == 0.4
        del TABLE_II["custom-test"]


class TestSizeDependentRatio:
    def test_reproduces_table3_at_anchors(self):
        """With a codec whose ratio equals the anchor asymptote, the model
        must return Table III exactly at every anchor size."""
        codec = Codec("sortlike", speed=1.0, decompression_speed=1.0,
                      ratio=TABLE_III_ANCHORS[-1][1])
        model = SizeDependentRatio(codec)
        for size, ratio in TABLE_III_ANCHORS:
            assert model(size) == pytest.approx(ratio, abs=1e-12)

    def test_monotone_decreasing_in_size(self):
        model = SizeDependentRatio(get_codec("lz4"))
        sizes = np.logspace(4, 10, 50)
        ratios = model(sizes)
        assert np.all(np.diff(ratios) <= 1e-12)

    def test_asymptote_matches_codec_ratio(self):
        for name in TABLE_II:
            model = SizeDependentRatio(get_codec(name))
            assert model(10 * GB) == pytest.approx(get_codec(name).ratio, abs=1e-9)

    def test_clipped_to_physical_range(self):
        model = SizeDependentRatio(get_codec("lz4"))
        assert RATIO_MIN <= model(1.0) <= RATIO_MAX
        assert RATIO_MIN <= model(1e15) <= RATIO_MAX

    def test_rejects_nonpositive_size(self):
        model = SizeDependentRatio(get_codec("lz4"))
        with pytest.raises(ConfigurationError):
            model(0.0)

    def test_table3_helper(self):
        assert table3_ratio(10 * KB) == pytest.approx(0.6646)
        assert table3_ratio(10 * GB) == pytest.approx(0.2507)


class TestCompressionEngine:
    def test_flat_ratio_mode(self):
        eng = CompressionEngine("snappy", size_dependent=False)
        assert eng.ratio(1 * KB) == pytest.approx(0.4819)
        assert eng.ratio(1 * GB) == pytest.approx(0.4819)

    def test_size_dependent_mode(self):
        eng = CompressionEngine("zstd")
        assert eng.ratio(10 * KB) > eng.ratio(1 * GB)

    def test_speed_scale(self):
        base = CompressionEngine("lz4")
        slow = CompressionEngine("lz4", speed_scale=0.5)
        assert slow.speed == pytest.approx(base.speed / 2)

    def test_beats_bandwidth_vectorised(self):
        eng = CompressionEngine("lz4", size_dependent=False)
        out = eng.beats_bandwidth(np.array([1 * MB, 1 * MB]), np.array([mbps(100), gbps(100)]))
        assert list(out) == [True, False]

    def test_grant_cores_respects_budget(self):
        eng = CompressionEngine()
        want = np.array([True, True, True])
        src = np.array([0, 0, 1])
        granted = eng.grant_cores(want, src, free_cores=np.array([1, 1]))
        assert list(granted) == [True, False, True]

    def test_grant_cores_priority_order(self):
        eng = CompressionEngine()
        want = np.array([True, True])
        src = np.array([0, 0])
        granted = eng.grant_cores(
            want, src, free_cores=np.array([1]), priority=np.array([1, 0])
        )
        assert list(granted) == [False, True]

    def test_accepts_codec_object(self):
        c = Codec("x", speed=10.0, decompression_speed=10.0, ratio=0.5)
        eng = CompressionEngine(c, size_dependent=False)
        assert eng.disposal_speed(100.0) == pytest.approx(5.0)
