"""REPORT.md collation from per-experiment report files."""

import pytest

from repro.analysis import collate_reports
from repro.errors import ConfigurationError
from repro.experiments import EXPERIMENTS


def test_collates_present_and_marks_pending(tmp_path):
    (tmp_path / "fig4_motivating_example.txt").write_text("FIG4 TABLE")
    (tmp_path / "fig6e_cct_bandwidth.svg").write_text("<svg/>")
    (tmp_path / "fig6e_cct_bandwidth.txt").write_text("FIG6E TABLE")
    out = collate_reports(tmp_path)
    assert "FIG4 TABLE" in out
    assert "FIG6E TABLE" in out
    assert "![fig6e](fig6e_cct_bandwidth.svg)" in out
    assert "(pending" in out  # other experiments have no files yet


def test_every_experiment_gets_a_section(tmp_path):
    out = collate_reports(tmp_path)
    for exp in EXPERIMENTS.values():
        assert exp.exp_id in out


def test_unregistered_reports_listed(tmp_path):
    (tmp_path / "mystery.txt").write_text("???")
    out = collate_reports(tmp_path)
    assert "Unregistered reports" in out
    assert "mystery.txt" in out


def test_writes_destination(tmp_path):
    dest = tmp_path / "REPORT.md"
    collate_reports(tmp_path, dest)
    assert dest.read_text().startswith("# Reproduction report")


def test_rejects_missing_dir(tmp_path):
    with pytest.raises(ConfigurationError):
        collate_reports(tmp_path / "nope")


def test_real_reports_dir_collates():
    """Against whatever the benchmark runs have produced so far."""
    from pathlib import Path

    reports = Path(__file__).parent.parent / "benchmarks" / "reports"
    if not reports.is_dir():
        pytest.skip("no reports generated yet")
    out = collate_reports(reports)
    assert "# Reproduction report" in out
