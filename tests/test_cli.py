"""Command-line interface."""

import numpy as np
import pytest

from repro.cli import main, parse_bandwidth
from repro.errors import ReproError
from repro.schedulers import scheduler_names
from repro.units import GBPS, MBPS


class TestParseBandwidth:
    def test_units(self):
        assert parse_bandwidth("100mbps") == pytest.approx(100 * MBPS)
        assert parse_bandwidth("1gbps") == pytest.approx(GBPS)
        assert parse_bandwidth("1.5Gbps") == pytest.approx(1.5 * GBPS)
        assert parse_bandwidth("12500") == 12500.0

    def test_garbage(self):
        with pytest.raises(ReproError):
            parse_bandwidth("fast")


class TestCommands:
    def test_schedulers_lists_all(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(scheduler_names())

    def test_compare_runs(self, capsys):
        rc = main([
            "compare", "--policies", "fifo,fvdf", "--coflows", "6",
            "--ports", "4", "--bandwidth", "100mbps", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "avg CCT" in out and "fvdf" in out
        assert "speedup of fvdf" in out

    def test_compare_rejects_unknown_policy(self, capsys):
        with pytest.raises(SystemExit):
            main(["compare", "--policies", "quantum-annealer"])

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "sebf" in out and "4.50" in out

    def test_replay(self, tmp_path, capsys, rng):
        from repro.traces import synthesize_facebook_like, write_facebook_trace

        trace = synthesize_facebook_like(rng, num_coflows=5, num_ports=6,
                                         mean_reducer_mb=1.0)
        path = tmp_path / "t.txt"
        write_facebook_trace(trace, path)
        assert main(["replay", str(path), "--policies", "sebf",
                     "--bandwidth", "100mbps"]) == 0
        out = capsys.readouterr().out
        assert "5 coflows" in out

    def test_replay_missing_file(self, capsys):
        with pytest.raises(FileNotFoundError):
            main(["replay", "/nonexistent/trace.txt"])

    def test_cluster(self, capsys):
        rc = main(["cluster", "--scale", "large", "--nodes", "8",
                   "--jobs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "with Swallow" in out and "saved" in out

    def test_experiments_lists_registry(self, capsys):
        from repro.experiments import EXPERIMENTS

        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_reproduce_collect_only(self, capsys):
        rc = main(["reproduce", "--only", "fig4", "--collect-only"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "bench_fig4_motivating_example" in out

    def test_reproduce_unknown_experiment(self, capsys):
        assert main(["reproduce", "--only", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_module_entry_point(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "schedulers"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "fvdf" in proc.stdout
