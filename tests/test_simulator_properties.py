"""Property-based tests on the simulation engine's invariants.

Random workloads through random policies must always satisfy:

* conservation — a finished flow's bytes on the wire equal its raw bytes
  sent plus its compressed bytes at their compressed size;
* completeness — every submitted flow/coflow finishes, exactly once;
* causality — finishes are on the slice grid, after arrival, and physical
  finish never exceeds the observed finish;
* Eq. 8 — a coflow's CCT is the max of its member FCTs;
* compression only helps — bytes sent never exceed the original size.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.codecs import Codec
from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.cpu.cores import CpuModel
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import make_scheduler

N_PORTS = 4
POLICIES = ["fifo", "fair", "srtf", "pfp", "wss", "sebf", "scf", "ncf",
            "lcf", "coflow-fifo", "dclas", "fvdf", "fvdf-flow", "sebf-madd"]


@st.composite
def workloads(draw):
    n_coflows = draw(st.integers(1, 6))
    coflows = []
    t = 0.0
    for _ in range(n_coflows):
        width = draw(st.integers(1, 4))
        flows = [
            Flow(
                src=draw(st.integers(0, N_PORTS - 1)),
                dst=draw(st.integers(0, N_PORTS - 1)),
                size=draw(st.floats(0.05, 20.0)),
                compressible=draw(st.booleans()),
            )
            for _ in range(width)
        ]
        coflows.append(Coflow(flows, arrival=t))
        t += draw(st.floats(0.0, 3.0))
    return coflows


def run(coflows, policy):
    scheduler = make_scheduler(policy)
    engine = CompressionEngine(
        Codec("prop", speed=8.0, decompression_speed=32.0, ratio=0.5),
        size_dependent=False,
    )
    sim = SliceSimulator(
        BigSwitch(N_PORTS, bandwidth=1.0),
        scheduler,
        slice_len=0.05,
        cpu=CpuModel(N_PORTS, cores_per_node=2),
        compression=engine if scheduler.uses_compression else None,
    )
    sim.submit_many(coflows)
    return sim.run(), engine


@given(workloads(), st.sampled_from(POLICIES))
@settings(max_examples=120, deadline=None)
def test_engine_invariants(coflows, policy):
    res, engine = run(coflows, policy)

    # completeness: every flow and coflow finishes exactly once.
    n_flows = sum(c.width for c in coflows)
    assert len(res.flow_results) == n_flows
    assert len(res.coflow_results) == len(coflows)
    assert len({f.flow_id for f in res.flow_results}) == n_flows

    slice_len = 0.05
    for fr in res.flow_results:
        # causality and grid alignment.
        assert fr.finish >= fr.arrival
        assert fr.finish_physical <= fr.finish + 1e-9
        k = fr.finish / slice_len
        assert abs(k - round(k)) < 1e-6, "observed finish off the slice grid"
        # conservation: wire bytes = raw part + compressed part at ratio.
        raw_sent = fr.size - fr.bytes_compressed_in
        expected = raw_sent + fr.bytes_compressed_in * 0.5
        assert fr.bytes_sent == pytest.approx(expected, rel=1e-6, abs=1e-6)
        assert fr.bytes_sent <= fr.size * (1 + 1e-9)

    # Eq. 8: CCT is the max member FCT.
    for cr in res.coflow_results:
        assert cr.finish == pytest.approx(max(f.finish for f in cr.flow_results))
        assert cr.bytes_sent == pytest.approx(
            sum(f.bytes_sent for f in cr.flow_results)
        )


@given(workloads())
@settings(max_examples=60, deadline=None)
def test_compression_never_slower_than_disabled_on_makespan_bound(coflows):
    """FVDF with compression finishes no later than 2x the no-compression
    run (a loose regression bound: compression must never blow up)."""
    res_c, _ = run(coflows, "fvdf")
    res_n, _ = run(coflows, "fvdf-nocompress")
    assert res_c.makespan <= res_n.makespan * 2 + 1.0


@given(workloads(), st.sampled_from(["sebf", "fvdf"]))
@settings(max_examples=60, deadline=None)
def test_determinism(coflows, policy):
    """Same workload, same policy, same seedless engine -> identical output."""
    a, _ = run(coflows, policy)
    b, _ = run(coflows, policy)
    assert [f.finish for f in a.flow_results] == [f.finish for f in b.flow_results]
    assert a.total_bytes_sent == b.total_bytes_sent


def _shifted(coflows, offset):
    """Fresh copies of a workload translated ``offset`` seconds later."""
    out = []
    for cf in coflows:
        flows = [
            Flow(src=f.src, dst=f.dst, size=f.size,
                 compressible=f.compressible)
            for f in cf.flows
        ]
        out.append(Coflow(flows, arrival=cf.arrival + offset))
    return out


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_resume_at_large_now_matches_uninterrupted(data):
    """``run(until=...)`` resume is magnitude-independent.

    Regression for the horizon comparison's absolute 1e-12 epsilon: one
    ulp of 1e9 s is ~1.2e-7, so at large simulated times the tolerance
    underflowed to exact float equality and a resumed tick could stall
    on — or double-fire — a slice boundary.  The relative ``_time_eps``
    must make a chunked run (including chunks landing exactly on the
    slice grid) bit-identical to an uninterrupted one at any offset.
    """
    offset = data.draw(
        st.sampled_from([0.0, 1e3, 1e6, 1e9]), label="offset"
    )
    coflows = data.draw(workloads())
    policy = data.draw(st.sampled_from(["sebf", "fvdf-flow"]))

    whole, _ = run(_shifted(coflows, offset), policy)

    scheduler = make_scheduler(policy)
    engine = CompressionEngine(
        Codec("prop", speed=8.0, decompression_speed=32.0, ratio=0.5),
        size_dependent=False,
    )
    sim = SliceSimulator(
        BigSwitch(N_PORTS, bandwidth=1.0),
        scheduler,
        slice_len=0.05,
        cpu=CpuModel(N_PORTS, cores_per_node=2),
        compression=engine if scheduler.uses_compression else None,
    )
    sim.submit_many(_shifted(coflows, offset))
    # Resume in chunks; 0.05 lands exactly on the slice grid every time.
    chunk = data.draw(st.sampled_from([0.05, 0.1, 0.33]), label="chunk")
    n_chunks = data.draw(st.integers(1, 4), label="n_chunks")
    for i in range(1, n_chunks + 1):
        sim.run(until=offset + i * chunk)
        assert sim.now <= offset + i * chunk + 0.05
    chunked = sim.run()

    assert [f.finish for f in chunked.flow_results] == [
        f.finish for f in whole.flow_results
    ]
    assert [c.finish for c in chunked.coflow_results] == [
        c.finish for c in whole.coflow_results
    ]
    # Chunk boundaries insert extra decision points, so byte totals
    # accumulate in a different order — equal only up to float roundoff.
    assert chunked.total_bytes_sent == pytest.approx(
        whole.total_bytes_sent, rel=1e-9
    )
