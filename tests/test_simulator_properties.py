"""Property-based tests on the simulation engine's invariants.

Random workloads through random policies must always satisfy:

* conservation — a finished flow's bytes on the wire equal its raw bytes
  sent plus its compressed bytes at their compressed size;
* completeness — every submitted flow/coflow finishes, exactly once;
* causality — finishes are on the slice grid, after arrival, and physical
  finish never exceeds the observed finish;
* Eq. 8 — a coflow's CCT is the max of its member FCTs;
* compression only helps — bytes sent never exceed the original size.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.codecs import Codec
from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.cpu.cores import CpuModel
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import make_scheduler

N_PORTS = 4
POLICIES = ["fifo", "fair", "srtf", "pfp", "wss", "sebf", "scf", "ncf",
            "lcf", "coflow-fifo", "dclas", "fvdf", "fvdf-flow", "sebf-madd"]


@st.composite
def workloads(draw):
    n_coflows = draw(st.integers(1, 6))
    coflows = []
    t = 0.0
    for _ in range(n_coflows):
        width = draw(st.integers(1, 4))
        flows = [
            Flow(
                src=draw(st.integers(0, N_PORTS - 1)),
                dst=draw(st.integers(0, N_PORTS - 1)),
                size=draw(st.floats(0.05, 20.0)),
                compressible=draw(st.booleans()),
            )
            for _ in range(width)
        ]
        coflows.append(Coflow(flows, arrival=t))
        t += draw(st.floats(0.0, 3.0))
    return coflows


def run(coflows, policy):
    scheduler = make_scheduler(policy)
    engine = CompressionEngine(
        Codec("prop", speed=8.0, decompression_speed=32.0, ratio=0.5),
        size_dependent=False,
    )
    sim = SliceSimulator(
        BigSwitch(N_PORTS, bandwidth=1.0),
        scheduler,
        slice_len=0.05,
        cpu=CpuModel(N_PORTS, cores_per_node=2),
        compression=engine if scheduler.uses_compression else None,
    )
    sim.submit_many(coflows)
    return sim.run(), engine


@given(workloads(), st.sampled_from(POLICIES))
@settings(max_examples=120, deadline=None)
def test_engine_invariants(coflows, policy):
    res, engine = run(coflows, policy)

    # completeness: every flow and coflow finishes exactly once.
    n_flows = sum(c.width for c in coflows)
    assert len(res.flow_results) == n_flows
    assert len(res.coflow_results) == len(coflows)
    assert len({f.flow_id for f in res.flow_results}) == n_flows

    slice_len = 0.05
    for fr in res.flow_results:
        # causality and grid alignment.
        assert fr.finish >= fr.arrival
        assert fr.finish_physical <= fr.finish + 1e-9
        k = fr.finish / slice_len
        assert abs(k - round(k)) < 1e-6, "observed finish off the slice grid"
        # conservation: wire bytes = raw part + compressed part at ratio.
        raw_sent = fr.size - fr.bytes_compressed_in
        expected = raw_sent + fr.bytes_compressed_in * 0.5
        assert fr.bytes_sent == pytest.approx(expected, rel=1e-6, abs=1e-6)
        assert fr.bytes_sent <= fr.size * (1 + 1e-9)

    # Eq. 8: CCT is the max member FCT.
    for cr in res.coflow_results:
        assert cr.finish == pytest.approx(max(f.finish for f in cr.flow_results))
        assert cr.bytes_sent == pytest.approx(
            sum(f.bytes_sent for f in cr.flow_results)
        )


@given(workloads())
@settings(max_examples=60, deadline=None)
def test_compression_never_slower_than_disabled_on_makespan_bound(coflows):
    """FVDF with compression finishes no later than 2x the no-compression
    run (a loose regression bound: compression must never blow up)."""
    res_c, _ = run(coflows, "fvdf")
    res_n, _ = run(coflows, "fvdf-nocompress")
    assert res_c.makespan <= res_n.makespan * 2 + 1.0


@given(workloads(), st.sampled_from(["sebf", "fvdf"]))
@settings(max_examples=60, deadline=None)
def test_determinism(coflows, policy):
    """Same workload, same policy, same seedless engine -> identical output."""
    a, _ = run(coflows, policy)
    b, _ = run(coflows, policy)
    assert [f.finish for f in a.flow_results] == [f.finish for f in b.flow_results]
    assert a.total_bytes_sent == b.total_bytes_sent
