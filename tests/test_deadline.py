"""Deadline-aware EDF scheduling with admission control (extension)."""

import numpy as np
import pytest

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import DeadlineEDF, deadline_stats, make_scheduler


def run(coflows, scheduler=None, n_ports=2, bandwidth=1.0):
    sched = scheduler or DeadlineEDF()
    sim = SliceSimulator(BigSwitch(n_ports, bandwidth), sched, slice_len=0.01)
    sim.submit_many(coflows)
    return sim.run(), sched


class TestModel:
    def test_deadline_validation(self):
        with pytest.raises(ConfigurationError):
            Coflow([Flow(0, 0, 1.0)], deadline=0.0)
        with pytest.raises(ConfigurationError):
            Coflow([Flow(0, 0, 1.0)], deadline=-1.0)

    def test_met_deadline_property(self):
        res, _ = run([Coflow([Flow(0, 0, 2.0)], deadline=5.0)])
        cr = res.coflow_results[0]
        assert cr.deadline == 5.0
        assert cr.met_deadline is True

    def test_no_deadline_is_none(self):
        res, _ = run([Coflow([Flow(0, 0, 2.0)])])
        assert res.coflow_results[0].met_deadline is None

    def test_registry(self):
        assert make_scheduler("edf-deadline").name == "edf-deadline"
        assert make_scheduler("edf-noadmission").admission is False


class TestAdmission:
    def test_feasible_deadline_admitted_and_met(self):
        c = Coflow([Flow(0, 0, 2.0)], deadline=4.0, label="ok")
        res, sched = run([c])
        assert sched.was_admitted(c.coflow_id)
        assert res.coflow_results[0].met_deadline is True

    def test_impossible_deadline_rejected(self):
        """4 bytes through a 1 B/s port cannot finish in 1 s."""
        c = Coflow([Flow(0, 0, 4.0)], deadline=1.0)
        res, sched = run([c])
        assert not sched.was_admitted(c.coflow_id)
        assert sched.rejected_count == 1
        # still completes, just best-effort and late.
        assert res.coflow_results[0].met_deadline is False

    def test_admitted_guarantee_survives_later_arrivals(self):
        """An admitted tight coflow keeps its rate when a second deadline
        coflow arrives that would otherwise steal the port."""
        first = Coflow([Flow(0, 0, 4.0)], arrival=0.0, deadline=5.0, label="first")
        second = Coflow([Flow(0, 0, 4.0)], arrival=1.0, deadline=2.0, label="second")
        res, sched = run([first, second])
        by_label = {c.label: c for c in res.coflow_results}
        assert sched.was_admitted(first.coflow_id)
        # second's demands (4 B in 2 s = 2 B/s) cannot fit: rejected.
        assert not sched.was_admitted(second.coflow_id)
        assert by_label["first"].met_deadline is True

    def test_admission_considers_residual_capacity(self):
        """Two coflows that together need exactly the port are both
        admitted and both meet their deadlines."""
        a = Coflow([Flow(0, 0, 2.0)], deadline=4.0, label="a")
        b = Coflow([Flow(1, 1, 2.0)], deadline=4.0, label="b")  # disjoint ports
        res, sched = run([a, b])
        assert sched.was_admitted(a.coflow_id)
        assert sched.was_admitted(b.coflow_id)
        stats = deadline_stats(res.coflow_results)
        assert stats["met_fraction"] == 1.0

    def test_no_admission_mode_misses_deadlines(self):
        """Without admission control, overload makes tight deadlines slip —
        the Varys argument for admission."""
        coflows_a = [
            Coflow([Flow(0, 0, 3.0)], arrival=0.0, deadline=3.2, label="x"),
            Coflow([Flow(0, 0, 3.0)], arrival=0.0, deadline=3.2, label="y"),
        ]
        res, _ = run(coflows_a, scheduler=DeadlineEDF(admission=False))
        stats = deadline_stats(res.coflow_results)
        assert stats["met"] <= 1  # at most one of the two can make it

    def test_admission_protects_the_feasible_one(self):
        coflows = [
            Coflow([Flow(0, 0, 3.0)], arrival=0.0, deadline=3.2, label="x"),
            Coflow([Flow(0, 0, 3.0)], arrival=0.0, deadline=3.2, label="y"),
        ]
        res, sched = run(coflows)
        stats = deadline_stats(res.coflow_results)
        assert stats["met"] == 1
        assert sched.rejected_count == 1


class TestBestEffortCoexistence:
    def test_best_effort_gets_leftovers(self):
        admitted = Coflow([Flow(0, 0, 2.0)], deadline=4.0, label="guaranteed")
        background = Coflow([Flow(0, 0, 2.0)], label="bg")
        res, _ = run([admitted, background])
        by_label = {c.label: c for c in res.coflow_results}
        assert by_label["guaranteed"].met_deadline is True
        # work conservation: port always busy, everything done by ~4 s.
        assert res.makespan == pytest.approx(4.0, abs=0.05)

    def test_work_conserving_when_guarantees_are_loose(self):
        """A loose deadline must not idle the port: backfill finishes the
        coflow far before its deadline."""
        c = Coflow([Flow(0, 0, 2.0)], deadline=100.0)
        res, _ = run([c])
        assert res.coflow_results[0].cct == pytest.approx(2.0, abs=0.05)

    def test_deadline_stats_empty(self):
        assert deadline_stats([])["met_fraction"] == 1.0
