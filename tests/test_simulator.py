"""Slice-based engine semantics."""

import numpy as np
import pytest

from repro.compression.codecs import Codec
from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.scheduler import Allocation, Scheduler
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import FlowFAIR, FlowFIFO


def one_flow_coflow(size=4.0, src=0, dst=0, arrival=0.0, **kw):
    return Coflow([Flow(src=src, dst=dst, size=size, **kw)], arrival=arrival)


class FullRate(Scheduler):
    """Give every flow its full end-to-end capacity (test fixture; only
    valid when flows never share ports)."""

    name = "full-rate"

    def schedule(self, view):
        return Allocation(rates=view.link_cap.copy())


class AlwaysCompress(Scheduler):
    """Compress any flow with raw bytes left, transmit the rest."""

    name = "always-compress"
    uses_compression = True

    def schedule(self, view):
        want = view.compressible & (view.raw > 0)
        beta = view.compression.grant_cores(want, view.src, view.free_cores)
        rates = np.where(beta, 0.0, view.link_cap)
        return Allocation(rates=rates, compress=beta)


class TestBasicRuns:
    def test_single_flow_fct(self):
        sw = BigSwitch(1, bandwidth=1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.01)
        sim.submit(one_flow_coflow(size=4.0))
        res = sim.run()
        assert len(res.flow_results) == 1
        fr = res.flow_results[0]
        assert fr.fct == pytest.approx(4.0)
        assert fr.finish_physical == pytest.approx(4.0)
        assert fr.bytes_sent == pytest.approx(4.0)
        assert res.avg_cct == pytest.approx(4.0)

    def test_arrival_snaps_to_slice_grid(self):
        sw = BigSwitch(1, bandwidth=1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.5)
        sim.submit(one_flow_coflow(size=1.0, arrival=0.3))
        res = sim.run()
        fr = res.flow_results[0]
        # activates at 0.5; transmits 1 s; observed at boundary 1.5.
        assert fr.start == pytest.approx(0.5)
        assert fr.finish == pytest.approx(1.5)
        assert fr.fct == pytest.approx(1.2)

    def test_subslice_flow_pays_slice_waste(self):
        """A flow much smaller than one slice still occupies a whole slice —
        the time-slice waste the paper describes (Section VI-A1)."""
        sw = BigSwitch(1, bandwidth=1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=1.0)
        sim.submit(one_flow_coflow(size=0.01))
        res = sim.run()
        fr = res.flow_results[0]
        assert fr.finish_physical == pytest.approx(0.01)
        assert fr.finish == pytest.approx(1.0)  # observed a full slice later

    def test_makespan_and_decision_points(self):
        sw = BigSwitch(2, bandwidth=1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.01)
        sim.submit(one_flow_coflow(size=1.0, src=0, dst=0))
        sim.submit(one_flow_coflow(size=2.0, src=1, dst=1))
        res = sim.run()
        assert res.makespan == pytest.approx(2.0)
        assert res.decision_points >= 2

    def test_sequential_coflows_on_one_port(self):
        sw = BigSwitch(1, bandwidth=2.0)
        sim = SliceSimulator(sw, FlowFIFO(), slice_len=0.01)
        sim.submit(one_flow_coflow(size=2.0, arrival=0.0))
        sim.submit(one_flow_coflow(size=2.0, arrival=0.0))
        res = sim.run()
        fcts = sorted(f.fct for f in res.flow_results)
        assert fcts == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_volume_conservation_without_compression(self):
        sw = BigSwitch(2, bandwidth=1.0)
        sim = SliceSimulator(sw, FlowFAIR(), slice_len=0.01)
        cof = Coflow([Flow(0, 0, 3.0), Flow(1, 1, 5.0), Flow(0, 1, 2.0)])
        sim.submit(cof)
        res = sim.run()
        for fr in res.flow_results:
            assert fr.bytes_sent == pytest.approx(fr.size)
        assert res.traffic_reduction == pytest.approx(0.0)

    def test_port_byte_accounting(self):
        sw = BigSwitch(2, bandwidth=1.0)
        sim = SliceSimulator(sw, FlowFAIR(), slice_len=0.01)
        sim.submit(Coflow([Flow(0, 0, 3.0), Flow(1, 1, 5.0), Flow(0, 1, 2.0)]))
        res = sim.run()
        assert np.allclose(res.ingress_bytes, [5.0, 5.0])
        assert np.allclose(res.egress_bytes, [3.0, 7.0])
        u_in, u_out = res.port_utilization(sw.ingress.capacity, sw.egress.capacity)
        # egress 1 carries 7 bytes over the 7 s makespan at 1 B/s: ~100%.
        assert u_out[1] == pytest.approx(1.0, abs=0.02)
        assert np.all(u_in <= 1.0 + 1e-9)


class TestHeterogeneousFabrics:
    def test_asymmetric_port_counts_end_to_end(self):
        """A 2-ingress x 3-egress shuffle view runs fine."""
        sw = BigSwitch(num_ports=2, bandwidth=1.0, num_egress_ports=3)
        sim = SliceSimulator(sw, FlowFAIR(), slice_len=0.01)
        sim.submit(Coflow([Flow(0, 2, 2.0), Flow(1, 0, 2.0), Flow(0, 1, 2.0)]))
        res = sim.run()
        assert len(res.flow_results) == 3
        # ingress 0 carries 4 bytes at 1 B/s: finish no earlier than 4 s.
        assert res.makespan >= 4.0 - 1e-9

    def test_heterogeneous_port_speeds(self):
        """A slow egress port is the bottleneck for its flow only."""
        sw = BigSwitch(num_ports=2, bandwidth=[4.0, 4.0],
                       egress_bandwidth=[4.0, 1.0])
        sim = SliceSimulator(sw, FlowFAIR(), slice_len=0.01)
        fast = Coflow([Flow(0, 0, 4.0)], label="fast")
        slow = Coflow([Flow(1, 1, 4.0)], label="slow")
        sim.submit_many([fast, slow])
        res = sim.run()
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["fast"] == pytest.approx(1.0, abs=0.05)
        assert cct["slow"] == pytest.approx(4.0, abs=0.05)


class TestCallbacksAndIncremental:
    def test_coflow_completion_callback(self):
        sw = BigSwitch(1, 1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.01)
        done = []
        sim.on_coflow_complete(lambda cr: done.append(cr.coflow_id))
        c = one_flow_coflow(size=1.0)
        sim.submit(c)
        sim.run()
        assert done == [c.coflow_id]

    def test_flow_completion_callback(self):
        sw = BigSwitch(1, 1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.01)
        seen = []
        sim.on_flow_complete(lambda fr: seen.append(fr.flow_id))
        sim.submit(one_flow_coflow(size=1.0))
        sim.run()
        assert len(seen) == 1

    def test_incremental_run_and_submit(self):
        sw = BigSwitch(1, 1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.01)
        sim.submit(one_flow_coflow(size=1.0))
        sim.run(until=0.5)
        assert sim.now == pytest.approx(0.5)
        sim.submit(one_flow_coflow(size=1.0, arrival=2.0))
        res = sim.run()
        assert len(res.flow_results) == 2
        assert res.makespan == pytest.approx(3.0)

    def test_submit_in_the_past_rejected(self):
        sw = BigSwitch(1, 1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.01)
        sim.submit(one_flow_coflow(size=1.0))
        sim.run()
        with pytest.raises(ConfigurationError, match="arrives at"):
            sim.submit(one_flow_coflow(size=1.0, arrival=0.0))

    def test_double_submit_rejected(self):
        sw = BigSwitch(1, 1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.01)
        c = one_flow_coflow()
        sim.submit(c)
        with pytest.raises(ConfigurationError, match="twice"):
            sim.submit(c)

    def test_run_until_before_any_arrival(self):
        sw = BigSwitch(1, 1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.01)
        sim.submit(one_flow_coflow(size=1.0, arrival=10.0))
        res = sim.run(until=5.0)
        assert res.flow_results == []
        assert sim.now <= 5.0 + 1e-9

    def test_run_until_advances_an_idle_engine(self):
        # ``run(until=t)`` means the clock reaches t even with nothing to
        # simulate — an incremental caller's next horizon (now + tick) must
        # keep moving, or a driver waiting out an arrival gap livelocks.
        sw = BigSwitch(1, 1.0)
        sim = SliceSimulator(sw, FullRate(), slice_len=0.01)
        sim.run(until=3.0)
        assert sim.now == pytest.approx(3.0)
        sim.submit(one_flow_coflow(size=1.0, arrival=5.0))
        res = sim.run()
        assert res.makespan == pytest.approx(6.0)


class TestCompressionSemantics:
    def engine(self, speed=2.0, ratio=0.5):
        return CompressionEngine(
            Codec("t", speed=speed, decompression_speed=speed * 4, ratio=ratio),
            size_dependent=False,
        )

    def test_compression_reduces_bytes_sent(self):
        sw = BigSwitch(1, bandwidth=1.0)
        sim = SliceSimulator(
            sw, AlwaysCompress(), slice_len=0.01, compression=self.engine()
        )
        sim.submit(one_flow_coflow(size=4.0))
        res = sim.run()
        fr = res.flow_results[0]
        # fully compressed before transmitting: 2 s compress + 2 s transmit
        assert fr.bytes_sent == pytest.approx(2.0)
        assert fr.bytes_compressed_in == pytest.approx(4.0)
        assert fr.fct == pytest.approx(4.0)
        assert res.traffic_reduction == pytest.approx(0.5)

    def test_fast_compression_beats_plain_transmit(self):
        """R(1-xi) > B: compress-then-send is quicker than sending raw."""
        sw = BigSwitch(1, bandwidth=1.0)
        eng = self.engine(speed=8.0, ratio=0.5)
        sim = SliceSimulator(sw, AlwaysCompress(), slice_len=0.01, compression=eng)
        sim.submit(one_flow_coflow(size=4.0))
        res = sim.run()
        # 0.5 s to compress 4 -> 2, then 2 s to send.
        assert res.flow_results[0].fct == pytest.approx(2.5)

    def test_incompressible_flow_never_compressed(self):
        sw = BigSwitch(1, bandwidth=1.0)
        sim = SliceSimulator(
            sw, AlwaysCompress(), slice_len=0.01, compression=self.engine()
        )
        sim.submit(Coflow([Flow(0, 0, 4.0, compressible=False)]))
        res = sim.run()
        assert res.flow_results[0].bytes_sent == pytest.approx(4.0)

    def test_volume_conservation_with_compression(self):
        sw = BigSwitch(1, bandwidth=1.0)
        sim = SliceSimulator(
            sw, AlwaysCompress(), slice_len=0.01, compression=self.engine(ratio=0.25)
        )
        sim.submit(one_flow_coflow(size=8.0))
        res = sim.run()
        fr = res.flow_results[0]
        # sent == raw portion + compressed_in * ratio
        raw_sent = fr.size - fr.bytes_compressed_in
        assert fr.bytes_sent == pytest.approx(raw_sent + fr.bytes_compressed_in * 0.25)

    def test_cpu_claims_sampled(self):
        sw = BigSwitch(1, bandwidth=1.0)
        from repro.cpu.cores import CpuModel

        cpu = CpuModel(1, cores_per_node=2)
        sim = SliceSimulator(
            sw, AlwaysCompress(), slice_len=0.01, cpu=cpu,
            compression=self.engine(), sample_cpu=True,
        )
        sim.submit(one_flow_coflow(size=4.0))
        res = sim.run()
        assert res.cpu_recorder is not None
        assert res.cpu_recorder.busy.max() == pytest.approx(0.5)  # 1 of 2 cores
        # all claims released at the end
        assert cpu.free_cores(res.makespan)[0] == 2


class BadScheduler(Scheduler):
    name = "bad"

    def __init__(self, alloc_fn):
        self.alloc_fn = alloc_fn

    def schedule(self, view):
        return self.alloc_fn(view)


class TestValidation:
    def sim(self, scheduler, compression=None):
        sw = BigSwitch(1, bandwidth=1.0)
        s = SliceSimulator(sw, scheduler, slice_len=0.01, compression=compression)
        s.submit(one_flow_coflow(size=4.0))
        return s

    def test_wrong_length_rejected(self):
        s = self.sim(BadScheduler(lambda v: Allocation(rates=np.zeros(5))))
        with pytest.raises(SchedulingError, match="length"):
            s.run()

    def test_oversubscription_rejected(self):
        s = self.sim(BadScheduler(lambda v: Allocation(rates=np.full(v.num_flows, 2.0))))
        with pytest.raises(SchedulingError, match="oversubscribed"):
            s.run()

    def test_nonfinite_rejected(self):
        s = self.sim(BadScheduler(lambda v: Allocation(rates=np.full(v.num_flows, np.nan))))
        with pytest.raises(SchedulingError, match="non-finite"):
            s.run()

    def test_compress_and_transmit_rejected(self):
        class Both(Scheduler):
            name = "both"
            uses_compression = True

            def schedule(self, view):
                return Allocation(
                    rates=np.ones(view.num_flows),
                    compress=np.ones(view.num_flows, dtype=bool),
                )

        sw = BigSwitch(1, bandwidth=1.0)
        s = SliceSimulator(sw, Both(), slice_len=0.01)
        s.submit(one_flow_coflow(size=4.0))
        with pytest.raises(SchedulingError, match="exclusive"):
            s.run()

    def test_compression_without_engine_rejected(self):
        def alloc(v):
            return Allocation(
                rates=np.zeros(v.num_flows), compress=np.ones(v.num_flows, dtype=bool)
            )

        s = self.sim(BadScheduler(alloc), compression=None)
        with pytest.raises(SchedulingError, match="no compression engine"):
            s.run()

    def test_core_budget_enforced(self):
        class Greedy(Scheduler):
            name = "greedy-compress"
            uses_compression = True

            def schedule(self, view):
                # ask to compress more flows than node 0 has cores
                return Allocation(
                    rates=np.zeros(view.num_flows),
                    compress=np.ones(view.num_flows, dtype=bool),
                )

        from repro.cpu.cores import CpuModel

        sw = BigSwitch(1, bandwidth=1.0)
        s = SliceSimulator(sw, Greedy(), slice_len=0.01, cpu=CpuModel(1, cores_per_node=1))
        s.submit(Coflow([Flow(0, 0, 4.0), Flow(0, 0, 4.0)]))
        with pytest.raises(SchedulingError, match="free cores"):
            s.run()

    def test_stall_detected(self):
        s = self.sim(BadScheduler(lambda v: Allocation(rates=np.zeros(v.num_flows))))
        with pytest.raises(SimulationError, match="cannot advance"):
            s.run()

    def test_cpu_fabric_shape_mismatch(self):
        from repro.cpu.cores import CpuModel

        sw = BigSwitch(2, bandwidth=1.0)
        with pytest.raises(ConfigurationError, match="ingress ports"):
            SliceSimulator(sw, FullRate(), cpu=CpuModel(5))

    def test_bad_slice_len(self):
        sw = BigSwitch(1, 1.0)
        with pytest.raises(ConfigurationError):
            SliceSimulator(sw, FullRate(), slice_len=0.0)
