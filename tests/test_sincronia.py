"""Sincronia-style BSSI ordering (extension)."""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, run_policy
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.offline import exhaustive_best_order
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import Sincronia, bssi_order, make_scheduler


class TestBssiOrder:
    def test_single_port_unit_weights_is_smallest_first(self):
        """On one machine with unit weights, BSSI reduces to Smith's rule,
        i.e. smallest total load first."""
        loads = np.array([[5.0], [1.0], [3.0]])
        assert bssi_order(loads) == [1, 2, 0]

    def test_weights_promote_heavy_coflows(self):
        loads = np.array([[4.0], [4.0]])
        assert bssi_order(loads, np.array([1.0, 10.0])) == [1, 0]

    def test_bottleneck_port_drives_the_choice(self):
        # coflow 0 is tiny on port 0 but huge on port 1 (the bottleneck).
        loads = np.array([
            [1.0, 9.0],
            [2.0, 1.0],
        ])
        order = bssi_order(loads)
        assert order == [1, 0]  # the bottleneck hog goes last

    def test_zero_load_coflows_handled(self):
        loads = np.array([[0.0, 0.0], [1.0, 0.0]])
        order = bssi_order(loads)
        assert sorted(order) == [0, 1]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bssi_order(np.zeros(3))
        with pytest.raises(ConfigurationError):
            bssi_order(np.zeros((2, 2)), np.array([1.0]))


class TestSincroniaScheduler:
    def test_registry(self):
        assert make_scheduler("sincronia").name == "sincronia"

    def test_single_port_matches_scf(self):
        coflows = [
            Coflow([Flow(0, 0, 4.0)], label="big"),
            Coflow([Flow(0, 0, 1.0)], label="small"),
        ]
        res = run_policy("sincronia", coflows,
                         ExperimentSetup(num_ports=2, bandwidth=1.0))
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["small"] == pytest.approx(1.0, abs=0.05)
        assert cct["big"] == pytest.approx(5.0, abs=0.05)

    def test_near_optimal_on_small_instances(self, rng):
        """Empirically within 25% of the exhaustive optimum on random tiny
        instances (the theory guarantees 4x; practice is much tighter)."""
        for trial in range(5):
            coflows = []
            for _ in range(4):
                flows = [
                    Flow(int(rng.integers(0, 3)), int(rng.integers(0, 3)),
                         float(rng.uniform(0.5, 5.0)))
                    for _ in range(int(rng.integers(1, 3)))
                ]
                coflows.append(Coflow(flows, arrival=0.0))
            best = exhaustive_best_order(coflows, lambda: BigSwitch(3, 1.0))
            res = run_policy("sincronia", coflows,
                             ExperimentSetup(num_ports=3, bandwidth=1.0))
            assert res.avg_cct <= best.best_value * 1.25 + 1e-6

    def test_weighted_variant(self):
        """A x10-weighted coflow preempts an equal-size rival."""
        vip = Coflow([Flow(0, 0, 4.0)], label="vip")
        pleb = Coflow([Flow(0, 0, 4.0)], label="pleb")
        sched = Sincronia(weight_of=lambda c: 10.0 if c.label == "vip" else 1.0)
        res = run_policy(sched, [pleb, vip],
                         ExperimentSetup(num_ports=1, bandwidth=1.0))
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["vip"] < cct["pleb"]

    def test_on_trace_between_fifo_and_fvdf(self, rng):
        from repro.traces.distributions import LogNormalSizes
        from repro.traces.generator import WorkloadConfig, generate_workload
        from repro.analysis import run_many
        from repro.units import MB, KB, mbps

        cfg = WorkloadConfig(
            num_coflows=20, num_ports=8,
            size_dist=LogNormalSizes(median=4 * MB, sigma=1.2, lo=128 * KB,
                                     hi=64 * MB),
            width=(1, 5), arrival_rate=2.0,
        )
        workload = generate_workload(cfg, rng)
        setup = ExperimentSetup(num_ports=8, bandwidth=mbps(100))
        out = run_many(["coflow-fifo", "sincronia", "sebf", "fvdf"], workload, setup)
        assert out["sincronia"].avg_cct < out["coflow-fifo"].avg_cct
        # ordering-only Sincronia lands in SEBF's league; FVDF's compression
        # beats both.
        assert out["sincronia"].avg_cct < out["sebf"].avg_cct * 1.3
        assert out["fvdf"].avg_cct < out["sincronia"].avg_cct
