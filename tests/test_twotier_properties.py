"""Property-based invariants on the two-tier oversubscribed fabric.

Every policy, on random rack-structured workloads, must produce rate
allocations the fabric's (stricter) feasibility check accepts — the engine
validates every window, so a clean completion *is* the proof — and the
big-switch lower bounds remain valid (two-tier only adds constraints)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import avg_cct_lower_bound, makespan_lower_bound
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.fabric import BigSwitch, TwoTierFabric
from repro.schedulers import make_scheduler

NUM_RACKS, HOSTS = 2, 2
N_PORTS = NUM_RACKS * HOSTS
POLICIES = ["fifo", "fair", "wss", "sebf", "sebf-madd", "dclas",
            "sincronia", "fvdf"]


@st.composite
def rack_workloads(draw):
    coflows = []
    t = 0.0
    for _ in range(draw(st.integers(1, 5))):
        flows = [
            Flow(draw(st.integers(0, N_PORTS - 1)),
                 draw(st.integers(0, N_PORTS - 1)),
                 draw(st.floats(0.1, 6.0)))
            for _ in range(draw(st.integers(1, 3)))
        ]
        coflows.append(Coflow(flows, arrival=t))
        t += draw(st.floats(0.0, 2.0))
    return coflows


@given(rack_workloads(), st.sampled_from(POLICIES),
       st.sampled_from([0.5, 1.0, 2.0]))
@settings(max_examples=120, deadline=None)
def test_two_tier_feasibility_and_bounds(coflows, policy, uplink):
    fabric = TwoTierFabric(NUM_RACKS, HOSTS, bandwidth=1.0,
                           uplink_bandwidth=uplink)
    sim = SliceSimulator(fabric, make_scheduler(policy), slice_len=0.05)
    sim.submit_many(coflows)
    res = sim.run()  # every window passed the two-tier feasibility check
    assert len(res.coflow_results) == len(coflows)
    # Big-switch bounds stay valid (two-tier adds constraints, never
    # removes any).  FVDF compresses, so skip the uncompressed bound there.
    if policy != "fvdf":
        big = BigSwitch(N_PORTS, 1.0)
        tol = 1 + 1e-6
        assert res.avg_cct * tol >= avg_cct_lower_bound(coflows, big)
        assert res.makespan * tol + 0.05 >= makespan_lower_bound(coflows, big)


@given(st.floats(0.5, 6.0), st.sampled_from([0.25, 0.5, 1.0]))
@settings(max_examples=40, deadline=None)
def test_single_inter_rack_flow_capped_by_uplink(size, uplink):
    """With one flow there are no scheduling anomalies: an inter-rack
    transfer can never beat ``size / min(host, uplink)``.

    (The multi-coflow version of "thinner uplink never helps" is *false*
    for greedy heuristics — Graham-style anomalies let a tighter
    constraint accidentally improve a priority schedule — which hypothesis
    duly demonstrated; hence this anomaly-free form.)
    """
    fabric = TwoTierFabric(NUM_RACKS, HOSTS, bandwidth=1.0,
                           uplink_bandwidth=uplink)
    sim = SliceSimulator(fabric, make_scheduler("sebf"), slice_len=0.05)
    sim.submit(Coflow([Flow(0, HOSTS, size)]))  # rack 0 -> rack 1
    res = sim.run()
    assert res.flow_results[0].fct * (1 + 1e-9) >= size / min(1.0, uplink)