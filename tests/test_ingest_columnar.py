"""Block-columnar ingest equivalence and calendar checkpointing.

The columnar fast path — ``CoflowBlock`` batches through
``submit_block`` and the :class:`~repro.core.events.ArrivalCalendar` —
must be *bit-identical* to scalar per-coflow submission: same tie
breaking (submission order), same activation spans, same results.  These
properties pin that across out-of-order batches, tied arrivals,
cancel-before-arrival and ``run(until)`` resumes mid-batch, plus the
checkpoint round trip of a populated calendar (old checkpoints without
calendar arrays still restore via the slot-order rebuild).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ExperimentSetup
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.ingest import BlockBuilder, CoflowBlock
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import make_scheduler
from repro.service.checkpoint import (
    load_checkpoint,
    restore_simulator,
    save_checkpoint,
)
from repro.units import mbps

N_PORTS = 4
SLICE = 0.05


@st.composite
def workloads(draw, max_coflows=6):
    """Workloads with deliberate arrival ties (increments include 0.0)."""
    n_coflows = draw(st.integers(1, max_coflows))
    coflows = []
    t = 0.0
    for _ in range(n_coflows):
        width = draw(st.integers(1, 3))
        flows = [
            Flow(
                src=draw(st.integers(0, N_PORTS - 1)),
                dst=draw(st.integers(0, N_PORTS - 1)),
                size=draw(st.floats(0.05, 10.0)),
                compressible=draw(st.booleans()),
            )
            for _ in range(width)
        ]
        coflows.append(Coflow(flows, arrival=t))
        # 0.0 forces ties; 0.05 lands exactly on the slice grid.
        t += draw(st.sampled_from([0.0, 0.0, 0.05, 0.17, 1.0]))
    return coflows


def _sim(policy="sebf"):
    return SliceSimulator(
        BigSwitch(N_PORTS, bandwidth=1.0),
        make_scheduler(policy),
        slice_len=SLICE,
    )


def _assert_results_identical(a, b):
    assert a.makespan == b.makespan
    assert a.decision_points == b.decision_points
    assert list(a.flow_results) == list(b.flow_results)
    assert list(a.coflow_results) == list(b.coflow_results)


@given(workloads(), st.sampled_from(["sebf", "fvdf-flow"]))
@settings(max_examples=60, deadline=None)
def test_batched_equals_scalar_submit(coflows, policy):
    """One submit_many block == per-coflow submit, bit for bit."""
    batched, scalar = _sim(policy), _sim(policy)
    batched.submit_many(coflows)
    for c in coflows:
        scalar.submit(c)
    _assert_results_identical(batched.run(), scalar.run())


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_batch_split_points_do_not_matter(data):
    """Any batching of the same submission order is equivalent: the
    calendar breaks arrival ties by submission order, not batch shape."""
    coflows = data.draw(workloads())
    cut = data.draw(st.integers(0, len(coflows)), label="cut")
    whole, split = _sim(), _sim()
    whole.submit_many(coflows)
    split.submit_many(coflows[:cut])
    split.submit_many(coflows[cut:])
    _assert_results_identical(whole.run(), split.run())


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_run_until_resume_mid_batch(data):
    """run(until) with a second batch submitted at the pause point is
    identical between batched and scalar ingest."""
    first = data.draw(workloads(max_coflows=5))
    late = data.draw(workloads(max_coflows=3))
    horizon = data.draw(st.sampled_from([0.05, 0.25, 1.0]), label="horizon")
    for c in late:
        c.arrival += horizon + SLICE  # strictly after the pause point

    batched, scalar = _sim(), _sim()
    batched.submit_many(first)
    for c in first:
        scalar.submit(c)
    batched.run(until=horizon)
    scalar.run(until=horizon)
    batched.submit_many(late)
    for c in late:
        scalar.submit(c)
    _assert_results_identical(batched.run(), scalar.run())


@given(st.data())
@settings(max_examples=40, deadline=None)
def test_cancel_before_arrival_batched_vs_scalar(data):
    """Cancelling a not-yet-arrived coflow (a lazy calendar discard on the
    columnar path) leaves batched and scalar engines identical."""
    coflows = data.draw(workloads())
    victim = Coflow(
        [Flow(0, 1, 5.0)], arrival=coflows[-1].arrival + 10.0, label="victim"
    )
    coflows = coflows + [victim]
    batched, scalar = _sim(), _sim()
    batched.submit_many(coflows)
    for c in coflows:
        scalar.submit(c)
    pause = data.draw(st.sampled_from([0.0, 0.05, 0.5]), label="pause")
    batched.run(until=pause)
    scalar.run(until=pause)
    batched.cancel_coflow(victim.coflow_id)
    scalar.cancel_coflow(victim.coflow_id)
    _assert_results_identical(batched.run(), scalar.run())


class TestSubmitBlockValidation:
    def test_raw_columns_get_constructor_invariants(self):
        builder = BlockBuilder()
        builder.add_columns(
            0.0,
            np.array([0]),
            np.array([1]),
            np.array([-3.0]),  # invalid size
            np.array([True]),
        )
        with pytest.raises(ConfigurationError, match="size must be positive"):
            _sim().submit_block(builder.build())

    def test_duplicate_submission_rolls_back(self):
        sim = _sim()
        cf = Coflow([Flow(0, 1, 1.0)])
        sim.submit(cf)
        with pytest.raises(ConfigurationError, match="twice"):
            sim.submit_block(CoflowBlock.from_coflows([cf]))
        # the failed block left no partial state behind
        assert sim._n_cf == 1 and len(sim._cf_labels) == 1
        sim.run()
        assert len(sim.result().coflow_results) == 1

    def test_block_without_objects_runs(self):
        builder = BlockBuilder()
        builder.add_columns(
            0.0,
            np.array([0, 1]),
            np.array([1, 2]),
            np.array([2.0, 3.0]),
            np.array([True, False]),
            label="raw",
        )
        sim = _sim()
        sim.submit_block(builder.build())
        res = sim.run()
        assert len(res.flow_results) == 2
        assert res.coflow_results[0].label == "raw"


# ------------------------------------------------------- checkpointing
SETUP = ExperimentSetup(num_ports=N_PORTS, bandwidth=mbps(100), slice_len=0.01)


def _checkpoint_workload():
    """A workload whose tail is still in the calendar at checkpoint time."""
    rng = np.random.default_rng(11)
    coflows = []
    t = 0.0
    for i in range(12):
        w = int(rng.integers(1, 4))
        flows = [
            Flow(
                src=int(rng.integers(0, N_PORTS)),
                dst=int(rng.integers(0, N_PORTS)),
                size=float(rng.uniform(5e4, 4e5)),
                compressible=bool(rng.random() < 0.7),
            )
            for _ in range(w)
        ]
        coflows.append(Coflow(flows, arrival=t, label=f"ck{i}"))
        t += float(rng.uniform(0.0, 0.02))
    return coflows


class TestCalendarCheckpoint:
    def _paused_sim(self):
        sim = SETUP.build_simulator(make_scheduler("fvdf-flow"))
        sim.submit_many(_checkpoint_workload())
        sim.run(until=0.02)
        assert len(sim._calendar) > 0, "test needs pending arrivals"
        return sim

    def test_roundtrip_with_populated_calendar(self, tmp_path):
        sim = self._paused_sim()
        path = save_checkpoint(tmp_path / "cal.npz", sim, setup=SETUP)
        with np.load(path, allow_pickle=False) as data:
            assert data["cal_time"].size > 0
            assert {"cal_time", "cal_seq", "cal_slot"} <= set(data.files)
        restored = restore_simulator(load_checkpoint(path))
        assert len(restored._calendar) == len(sim._calendar)
        _assert_results_identical(sim.run(), restored.run())

    def test_legacy_checkpoint_without_calendar_arrays(self, tmp_path):
        """Checkpoints from before the columnar calendar (no ``cal_*``
        arrays, no ``flow__override`` column) restore via the slot-order
        calendar rebuild and an all-default override column."""
        sim = self._paused_sim()
        path = save_checkpoint(tmp_path / "new.npz", sim, setup=SETUP)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k].copy() for k in data.files}
        for key in ("cal_time", "cal_seq", "cal_slot", "flow___override"):
            arrays.pop(key)
        legacy = tmp_path / "legacy.npz"
        np.savez_compressed(legacy, **arrays)
        restored = restore_simulator(load_checkpoint(legacy))
        assert len(restored._calendar) == len(sim._calendar)
        _assert_results_identical(sim.run(), restored.run())

    def test_legacy_state_with_coflow_objects(self):
        """import_state still accepts the old ``coflows`` object list."""
        import pickle

        sim = self._paused_sim()
        state = sim.export_state()
        assert "coflows" not in state
        state = dict(state)
        for key in ("cal_time", "cal_seq", "cal_slot"):
            state.pop(key)
        # what a legacy export carried: the live Coflow objects per slot
        state["coflows"] = list(sim._cf_coflows)
        state["scheduler"] = pickle.loads(pickle.dumps(state["scheduler"]))
        other = SETUP.build_simulator(state["scheduler"])
        other.import_state(state)
        assert other._cf_coflows[0] is sim._cf_coflows[0]
        _assert_results_identical(sim.run(), other.run())
