"""Property-based guarantee: admission control never breaks its promise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.simulator import SliceSimulator
from repro.fabric.bigswitch import BigSwitch
from repro.schedulers import DeadlineEDF

N_PORTS = 3
SLICE = 0.05


@st.composite
def deadline_workloads(draw):
    """Random mixes of deadline and best-effort coflows, some infeasible."""
    coflows = []
    t = 0.0
    for _ in range(draw(st.integers(1, 6))):
        flows = [
            Flow(draw(st.integers(0, N_PORTS - 1)),
                 draw(st.integers(0, N_PORTS - 1)),
                 draw(st.floats(0.2, 8.0)))
            for _ in range(draw(st.integers(1, 3)))
        ]
        deadline = draw(
            st.one_of(st.none(), st.floats(0.5, 20.0))
        )
        coflows.append(Coflow(flows, arrival=t, deadline=deadline))
        t += draw(st.floats(0.0, 2.0))
    return coflows


@given(deadline_workloads())
@settings(max_examples=100, deadline=None)
def test_every_admitted_coflow_meets_its_deadline(coflows):
    sched = DeadlineEDF()
    sim = SliceSimulator(BigSwitch(N_PORTS, 1.0), sched, slice_len=SLICE)
    sim.submit_many(coflows)
    res = sim.run()
    assert len(res.coflow_results) == len(coflows)
    for cr in res.coflow_results:
        if cr.deadline is not None and sched.was_admitted(cr.coflow_id):
            assert cr.met_deadline, (
                f"admitted coflow {cr.coflow_id} missed: cct={cr.cct} "
                f"deadline={cr.deadline}"
            )


@given(deadline_workloads())
@settings(max_examples=50, deadline=None)
def test_admission_completes_everything_and_respects_bounds(coflows):
    """Admission control is not starvation: every coflow (admitted,
    rejected, best-effort) completes; all bytes cross the fabric; and the
    makespan never beats the port-workload lower bound.  (Makespans may
    legitimately differ from no-admission EDF on multi-port fabrics —
    priority orders route spare capacity differently.)"""
    from repro.core.bounds import makespan_lower_bound

    def run(admission):
        sim = SliceSimulator(
            BigSwitch(N_PORTS, 1.0), DeadlineEDF(admission=admission),
            slice_len=SLICE,
        )
        sim.submit_many(coflows)
        return sim.run()

    with_adm = run(True)
    without = run(False)
    assert len(with_adm.coflow_results) == len(coflows)
    assert len(without.coflow_results) == len(coflows)
    assert with_adm.total_bytes_sent == pytest.approx(without.total_bytes_sent)
    bound = makespan_lower_bound(coflows, BigSwitch(N_PORTS, 1.0))
    assert with_adm.makespan * (1 + 1e-9) + SLICE >= bound
