"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fabric.bigswitch import BigSwitch


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_fabric() -> BigSwitch:
    """A 4-port unit-bandwidth fabric."""
    return BigSwitch(num_ports=4, bandwidth=1.0)
