"""FVDF algorithm: compression strategy, Eq. 7 estimates, starvation freedom."""

import numpy as np
import pytest

from repro.compression.codecs import Codec
from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.fvdf import FVDFConfig, FVDFScheduler
from repro.core.simulator import SliceSimulator
from repro.cpu.cores import CpuModel
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch
from repro.units import gbps, mbps


def engine(speed=4.0, ratio=0.5):
    return CompressionEngine(
        Codec("t", speed=speed, decompression_speed=speed * 4, ratio=ratio),
        size_dependent=False,
    )


def run_fvdf(coflows, bandwidth=1.0, n_ports=4, config=None, eng=None,
             cores=2, slice_len=0.01, background=None):
    fabric = BigSwitch(n_ports, bandwidth)
    sim = SliceSimulator(
        fabric,
        FVDFScheduler(config or FVDFConfig()),
        slice_len=slice_len,
        cpu=CpuModel(n_ports, cores_per_node=cores, background=background),
        compression=eng or engine(speed=4.0 * bandwidth),
    )
    sim.submit_many(coflows)
    return sim.run()


class TestConfig:
    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            FVDFConfig(rate_policy="magic")

    def test_rejects_bad_granularity(self):
        with pytest.raises(ConfigurationError):
            FVDFConfig(granularity="job")

    def test_rejects_logbase_below_one(self):
        with pytest.raises(ConfigurationError):
            FVDFConfig(logbase=0.9)

    def test_name_reflects_compression(self):
        assert FVDFScheduler(FVDFConfig(compress=False)).name == "fvdf-nocompress"
        assert FVDFScheduler().name == "fvdf"

    def test_rejects_bad_aging(self):
        with pytest.raises(ConfigurationError):
            FVDFConfig(aging="wishful")

    def test_reset_clears_service_memory(self):
        s = FVDFScheduler()
        s._last_served[1] = False
        s.reset()
        assert s._last_served == {}


class TestEq3Gate:
    def test_compression_disabled_on_fat_links(self):
        """At 10 Gbps, LZ4's R(1-xi) < B, so FVDF must not compress — the
        paper's explanation for FVDF ≈ SEBF at high bandwidth."""
        eng = CompressionEngine("lz4", size_dependent=False)
        c = Coflow([Flow(0, 0, 1e9)])
        res = run_fvdf([c], bandwidth=gbps(10), eng=eng)
        assert res.traffic_reduction == pytest.approx(0.0)

    def test_compression_enabled_on_thin_links(self):
        eng = CompressionEngine("lz4", size_dependent=False)
        c = Coflow([Flow(0, 0, 1e8)])
        res = run_fvdf([c], bandwidth=mbps(100), eng=eng)
        assert res.traffic_reduction > 0.3

    def test_no_cores_no_compression(self):
        c = Coflow([Flow(0, 0, 8.0)])
        res = run_fvdf([c], background=lambda t: 1.0)  # all cores busy
        assert res.traffic_reduction == pytest.approx(0.0)

    def test_master_switch(self):
        c = Coflow([Flow(0, 0, 8.0)])
        res = run_fvdf([c], config=FVDFConfig(compress=False))
        assert res.traffic_reduction == pytest.approx(0.0)


class TestOrdering:
    def test_smaller_gamma_first(self):
        small = Coflow([Flow(0, 0, 1.0)], label="small")
        big = Coflow([Flow(0, 0, 50.0)], label="big")
        res = run_fvdf([big, small], config=FVDFConfig(compress=False))
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["small"] < cct["big"]
        assert cct["small"] == pytest.approx(1.0, abs=0.05)

    def test_work_conservation_on_disjoint_ports(self):
        a = Coflow([Flow(0, 0, 4.0)])
        b = Coflow([Flow(1, 1, 4.0)])
        res = run_fvdf([a, b], config=FVDFConfig(compress=False))
        # disjoint ports: both finish in ~4 s, nobody waits
        for c in res.coflow_results:
            assert c.cct == pytest.approx(4.0, abs=0.05)

    @pytest.mark.parametrize("policy", ["minimal", "greedy", "madd"])
    def test_all_rate_policies_complete(self, policy):
        coflows = [
            Coflow([Flow(0, 0, 3.0), Flow(1, 1, 2.0)], arrival=0.0),
            Coflow([Flow(0, 1, 2.0)], arrival=0.5),
        ]
        res = run_fvdf(coflows, config=FVDFConfig(rate_policy=policy))
        assert len(res.coflow_results) == 2


class TestStarvationFreedom:
    def stream_of_small_coflows(self, n=40, period=1.0, size=0.9):
        """Small coflows arriving continuously on port 0, each taking just
        under `period` seconds — would starve a big coflow forever under
        pure smallest-first."""
        return [
            Coflow([Flow(0, 0, size)], arrival=k * period, label=f"s{k}")
            for k in range(n)
        ]

    def test_priority_classes_prevent_starvation(self):
        big = Coflow([Flow(0, 0, 5.0)], arrival=0.0, label="big")
        coflows = [big] + self.stream_of_small_coflows()
        res = run_fvdf(coflows, config=FVDFConfig(compress=False, logbase=1.2))
        cct = {c.label: c.cct for c in res.coflow_results}
        # With upgrades the big coflow finishes long before the stream ends.
        assert cct["big"] < 25.0

    def test_without_upgrades_big_coflow_starves(self):
        big = Coflow([Flow(0, 0, 5.0)], arrival=0.0, label="big")
        coflows = [big] + self.stream_of_small_coflows()
        res = run_fvdf(coflows, config=FVDFConfig(compress=False, logbase=1.0))
        cct = {c.label: c.cct for c in res.coflow_results}
        starved = {
            c.label: c.cct
            for c in run_fvdf(
                coflows_clone(coflows),
                config=FVDFConfig(compress=False, logbase=1.0),
            ).coflow_results
        }
        # Pure SRTF-like ordering: the big coflow waits for the whole stream.
        assert starved["big"] > 35.0

    @pytest.mark.parametrize("aging", ["starved", "paper"])
    def test_aging_policies_prevent_starvation(self, aging):
        big = Coflow([Flow(0, 0, 5.0)], arrival=0.0, label="big")
        coflows = [big] + self.stream_of_small_coflows()
        res = run_fvdf(
            coflows, config=FVDFConfig(compress=False, logbase=1.2, aging=aging)
        )
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["big"] < 25.0, aging

    def test_starved_aging_spares_served_coflows(self):
        """Coflows on disjoint ports all receive service, so nobody ages —
        ordering stays pure Shortest-Γ-First."""
        a = Coflow([Flow(0, 0, 4.0)], label="a")
        b = Coflow([Flow(1, 1, 4.0)], label="b")
        res = run_fvdf([a, b], config=FVDFConfig(compress=False, aging="starved"))
        for c in res.coflow_results:
            assert c.cct == pytest.approx(4.0, abs=0.05)

    def test_upgrade_strictly_helps_the_big_coflow(self):
        big1 = Coflow([Flow(0, 0, 5.0)], arrival=0.0, label="big")
        stream1 = self.stream_of_small_coflows()
        with_up = run_fvdf(
            [big1] + stream1, config=FVDFConfig(compress=False, logbase=1.2)
        )
        big2 = Coflow([Flow(0, 0, 5.0)], arrival=0.0, label="big")
        stream2 = self.stream_of_small_coflows()
        without = run_fvdf(
            [big2] + stream2, config=FVDFConfig(compress=False, logbase=1.0)
        )
        cct_with = {c.label: c.cct for c in with_up.coflow_results}["big"]
        cct_without = {c.label: c.cct for c in without.coflow_results}["big"]
        assert cct_with < cct_without


def coflows_clone(coflows):
    """Fresh Coflow objects with the same shape (ids must be unique)."""
    out = []
    for c in coflows:
        out.append(
            Coflow(
                [Flow(f.src, f.dst, f.size, compressible=f.compressible)
                 for f in c.flows],
                arrival=c.arrival,
                label=c.label,
            )
        )
    return out


class TestFlowGranularity:
    def test_flow_mode_matches_srtf_shape(self):
        """In flow mode without compression, FVDF orders by expected FCT —
        effectively SRTF."""
        from repro.schedulers import FlowSRTF

        coflows = [
            Coflow([Flow(0, 0, 5.0), Flow(0, 0, 1.0)], arrival=0.0),
        ]
        cfg = FVDFConfig(compress=False, granularity="flow", logbase=1.0)
        res = run_fvdf(coflows, config=cfg)
        fct = sorted(f.fct for f in res.flow_results)
        assert fct[0] == pytest.approx(1.0, abs=0.05)
        assert fct[1] == pytest.approx(6.0, abs=0.05)


class TestCompressionScheduling:
    def test_traffic_reduction_close_to_ratio(self):
        """Slow network + fast codec: nearly everything is compressed, so
        the traffic reduction approaches 1 - ratio."""
        c = Coflow([Flow(0, 0, 100.0)])
        res = run_fvdf([c], eng=engine(speed=50.0, ratio=0.4))
        assert res.traffic_reduction == pytest.approx(0.6, abs=0.05)

    def test_fvdf_with_compression_beats_without(self):
        coflows_a = [Coflow([Flow(0, 0, 20.0), Flow(1, 1, 10.0)], arrival=0.0)]
        coflows_b = coflows_clone(coflows_a)
        with_c = run_fvdf(coflows_a, eng=engine(speed=8.0, ratio=0.5))
        without = run_fvdf(coflows_b, config=FVDFConfig(compress=False))
        assert with_c.avg_cct < without.avg_cct
