"""Parallel execution is an optimisation, never a semantic change.

The contract of :mod:`repro.runner` (and of ``run_many(parallel=...)``)
is that the process pool reproduces the sequential path *exactly* — the
same metrics to the last bit, at any worker count — and that a cache hit
returns the same summary the cold run produced.  These tests pin that on
a fig6e-shaped grid (the 7 coflow policies × 3 bandwidths of the
Fig. 6(e) sweep, over a smaller trace so the suite stays fast).
"""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, run_many
from repro.runner import ResultCache, RunSpec, WorkloadSpec, run_specs
from repro.traces.distributions import LogNormalSizes
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.units import KB, MB, gbps, mbps

POLICIES = ["sebf", "scf", "ncf", "lcf", "pff", "pfp", "fvdf"]
BANDWIDTHS = [("100mbps", mbps(100)), ("1gbps", gbps(1)), ("10gbps", gbps(10))]
WORKER_COUNTS = [1, 2, 4]


def _trace(seed=14, num_coflows=16):
    """A scaled-down fig6e-shaped coflow trace (log-normal sizes)."""
    cfg = WorkloadConfig(
        num_coflows=num_coflows, num_ports=16,
        size_dist=LogNormalSizes(median=2 * MB, sigma=1.3, lo=64 * KB, hi=32 * MB),
        width=(1, 8), arrival_rate=2.0,
    )
    return generate_workload(cfg, np.random.default_rng(seed))


def _grid_specs(coflows, full=False):
    workload = WorkloadSpec.inline(coflows)
    return [
        RunSpec(
            policy=p, workload=workload, key=f"{label}/{p}", full=full,
            setup=ExperimentSetup(num_ports=16, bandwidth=bw, slice_len=0.01),
        )
        for label, bw in BANDWIDTHS
        for p in POLICIES
    ]


def _result_bits(result):
    """Every observable of a full SimulationResult, exactly."""
    return (
        [(f.flow_id, f.fct, f.bytes_sent, f.finish) for f in result.flow_results],
        [(c.coflow_id, c.cct, c.finish) for c in result.coflow_results],
        result.makespan,
        result.decision_points,
        result.total_bytes_sent,
        result.total_bytes_original,
    )


class TestRunManyParallel:
    """run_many(parallel=N) == run_many() for N in {1, 2, 4}."""

    @pytest.fixture(scope="class")
    def coflows(self):
        return _trace()

    @pytest.fixture(scope="class")
    def sequential(self, coflows):
        return {
            label: run_many(
                POLICIES, coflows,
                ExperimentSetup(num_ports=16, bandwidth=bw, slice_len=0.01),
            )
            for label, bw in BANDWIDTHS
        }

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_bit_identical_to_sequential(self, coflows, sequential, workers):
        for label, bw in BANDWIDTHS:
            setup = ExperimentSetup(num_ports=16, bandwidth=bw, slice_len=0.01)
            pooled = run_many(
                POLICIES, coflows, setup, parallel=workers, cache=False
            )
            assert pooled.keys() == sequential[label].keys()
            for name in pooled:
                assert _result_bits(pooled[name]) == _result_bits(
                    sequential[label][name]
                ), (label, name, workers)


class TestRunSpecsParallel:
    """The raw spec fan-out is bit-identical at every worker count."""

    @pytest.fixture(scope="class")
    def coflows(self):
        return _trace(seed=15)

    @pytest.fixture(scope="class")
    def sequential(self, coflows):
        outs = run_specs(_grid_specs(coflows), workers=0, cache=False)
        return {o.key: o.summary for o in outs}

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_summaries_bit_identical(self, coflows, sequential, workers):
        outs = run_specs(_grid_specs(coflows), workers=workers, cache=False)
        assert [o.key for o in outs] == list(sequential)  # spec order kept
        for out in outs:
            # ResultSummary.__eq__ is exact: float equality, array equality.
            assert out.summary == sequential[out.key], (out.key, workers)

    def test_per_flow_arrays_bit_identical(self, coflows, sequential):
        specs = [
            RunSpec(
                policy="fvdf", workload=WorkloadSpec.inline(coflows),
                key=f"arr/{i}", arrays=True,
                setup=ExperimentSetup(
                    num_ports=16, bandwidth=mbps(100), slice_len=0.01
                ),
            )
            for i in range(4)
        ]
        seq = run_specs(specs, workers=0, cache=False)
        par = run_specs(specs, workers=2, cache=False)
        for s, p in zip(seq, par):
            assert np.array_equal(s.summary.fct, p.summary.fct)
            assert np.array_equal(s.summary.cct, p.summary.cct)
            assert s.summary == p.summary


class TestCacheHitsMatchColdRuns:
    def test_warm_summaries_equal_cold(self, tmp_path):
        coflows = _trace(seed=16, num_coflows=10)
        specs = _grid_specs(coflows)
        cache = ResultCache(root=tmp_path, enabled=True)
        cold = run_specs(specs, workers=2, cache=cache)
        assert cache.misses == len(specs) and cache.hits == 0
        warm = run_specs(specs, workers=2, cache=cache)
        assert cache.hits == len(specs)
        for c, w in zip(cold, warm):
            assert not c.cached and w.cached
            assert c.key == w.key
            assert c.summary == w.summary

    def test_warm_full_results_equal_cold(self, tmp_path):
        coflows = _trace(seed=17, num_coflows=8)
        specs = _grid_specs(coflows, full=True)[:4]
        cache = ResultCache(root=tmp_path, enabled=True)
        cold = run_specs(specs, workers=0, cache=cache)
        warm = run_specs(specs, workers=0, cache=cache)
        for c, w in zip(cold, warm):
            assert _result_bits(c.result) == _result_bits(w.result)

    def test_run_many_cache_roundtrip_matches_sequential(self, tmp_path):
        coflows = _trace(seed=18, num_coflows=8)
        setup = ExperimentSetup(num_ports=16, bandwidth=mbps(100), slice_len=0.01)
        baseline = run_many(POLICIES, coflows, setup)
        cold = run_many(POLICIES, coflows, setup, parallel=2, cache=tmp_path)
        warm = run_many(POLICIES, coflows, setup, parallel=2, cache=tmp_path)
        for name in baseline:
            assert _result_bits(cold[name]) == _result_bits(baseline[name])
            assert _result_bits(warm[name]) == _result_bits(baseline[name])
