"""Property-based tests for the rate-allocation primitives."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import rate_allocation as ra

N_PORTS = 5


@st.composite
def flow_sets(draw, max_flows=20):
    n = draw(st.integers(1, max_flows))
    src = draw(
        st.lists(st.integers(0, N_PORTS - 1), min_size=n, max_size=n).map(np.array)
    )
    dst = draw(
        st.lists(st.integers(0, N_PORTS - 1), min_size=n, max_size=n).map(np.array)
    )
    caps_in = draw(
        st.lists(
            st.floats(0.1, 10.0, allow_nan=False), min_size=N_PORTS, max_size=N_PORTS
        ).map(np.array)
    )
    caps_out = draw(
        st.lists(
            st.floats(0.1, 10.0, allow_nan=False), min_size=N_PORTS, max_size=N_PORTS
        ).map(np.array)
    )
    return src, dst, caps_in, caps_out


def _feasible(src, dst, rates, caps_in, caps_out):
    li = np.bincount(src, weights=rates, minlength=N_PORTS)
    lo = np.bincount(dst, weights=rates, minlength=N_PORTS)
    return np.all(li <= caps_in * (1 + 1e-6)) and np.all(lo <= caps_out * (1 + 1e-6))


@given(flow_sets())
@settings(max_examples=200, deadline=None)
def test_maxmin_is_feasible_and_nonnegative(fs):
    src, dst, ci, co = fs
    rates = ra.maxmin_fair(src, dst, ci.copy(), co.copy())
    assert np.all(rates >= 0)
    assert _feasible(src, dst, rates, ci, co)


@given(flow_sets())
@settings(max_examples=200, deadline=None)
def test_maxmin_is_work_conserving(fs):
    """Every flow is bottlenecked: it touches a saturated port."""
    src, dst, ci, co = fs
    rates = ra.maxmin_fair(src, dst, ci.copy(), co.copy())
    li = np.bincount(src, weights=rates, minlength=N_PORTS)
    lo = np.bincount(dst, weights=rates, minlength=N_PORTS)
    in_sat = li >= ci * (1 - 1e-6)
    out_sat = lo >= co * (1 - 1e-6)
    for i in range(len(src)):
        assert in_sat[src[i]] or out_sat[dst[i]], (
            f"flow {i} has rate {rates[i]} but neither port is saturated"
        )


@given(flow_sets())
@settings(max_examples=200, deadline=None)
def test_greedy_priority_feasible_and_head_flow_unthrottled(fs):
    src, dst, ci, co = fs
    order = np.arange(len(src))
    rates = ra.greedy_priority(order, src, dst, ci.copy(), co.copy())
    assert np.all(rates >= 0)
    assert _feasible(src, dst, rates, ci, co)
    # The highest-priority flow always gets its full end-to-end capacity.
    assert rates[0] == min(ci[src[0]], co[dst[0]])


@given(flow_sets(), st.integers(1, 4))
@settings(max_examples=150, deadline=None)
def test_madd_feasible_and_coflows_finish_together(fs, n_coflows):
    src, dst, ci, co = fs
    n = len(src)
    vol = np.linspace(1.0, 5.0, n)
    groups = [np.arange(i, n, n_coflows) for i in range(n_coflows)]
    rates = ra.madd(groups, src, dst, vol, ci.copy(), co.copy(), backfill=False)
    assert np.all(rates >= 0)
    assert _feasible(src, dst, rates, ci, co)
    # Inside one coflow, every flow that got a rate finishes at the same time.
    for g in groups:
        g = g[(rates[g] > 0)]
        if len(g) >= 2:
            finish = vol[g] / rates[g]
            assert np.allclose(finish, finish[0], rtol=1e-6)


@given(flow_sets())
@settings(max_examples=150, deadline=None)
def test_maxmin_weighted_dominance(fs):
    """A flow with twice the weight never gets a lower rate than its twin."""
    src, dst, ci, co = fs
    n = len(src)
    if n < 2:
        return
    # Make flows 0 and 1 identical endpoints, weight 2 vs 1.
    src = src.copy(); dst = dst.copy()
    src[1], dst[1] = src[0], dst[0]
    w = np.ones(n); w[0] = 2.0
    rates = ra.maxmin_fair(src, dst, ci.copy(), co.copy(), weights=w)
    assert rates[0] >= rates[1] - 1e-9
