"""Multi-seed experiment statistics."""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, SeedStats, run_seeds
from repro.errors import ConfigurationError
from repro.traces.distributions import ConstantSize
from repro.traces.generator import WorkloadConfig, generate_workload


def factory(seed):
    cfg = WorkloadConfig(
        num_coflows=8, num_ports=4, size_dist=ConstantSize(2.0), width=2,
        arrival_rate=2.0,
    )
    return generate_workload(cfg, np.random.default_rng(seed))


SETUP = ExperimentSetup(num_ports=4, bandwidth=1.0, slice_len=0.01)


class TestRunSeeds:
    def test_collects_per_policy_samples(self):
        stats = run_seeds(["fifo", "sebf"], factory, SETUP, seeds=range(3))
        assert set(stats.samples) == {"fifo", "sebf"}
        assert len(stats.samples["fifo"]) == 3
        assert stats.metric == "avg_cct"

    def test_mean_and_std(self):
        stats = SeedStats("m", {"a": np.array([1.0, 3.0])})
        assert stats.mean("a") == 2.0
        assert stats.std("a") == pytest.approx(np.std([1, 3], ddof=1))

    def test_std_single_sample_is_zero(self):
        stats = SeedStats("m", {"a": np.array([5.0])})
        assert stats.std("a") == 0.0

    def test_speedup_and_win_rate(self):
        stats = SeedStats(
            "m", {"base": np.array([2.0, 4.0]), "ours": np.array([1.0, 2.0])}
        )
        assert stats.speedup_mean("base", "ours") == pytest.approx(2.0)
        assert stats.win_rate("ours", "base") == 1.0
        assert stats.win_rate("base", "ours") == 0.0

    def test_sebf_beats_fifo_across_seeds(self):
        stats = run_seeds(["fifo", "sebf"], factory, SETUP, seeds=range(4))
        assert stats.win_rate("sebf", "fifo") >= 0.75

    def test_requires_seeds(self):
        with pytest.raises(ConfigurationError):
            run_seeds(["fifo"], factory, SETUP, seeds=[])

    def test_summary_rows_sorted(self):
        stats = SeedStats("m", {"b": np.array([1.0]), "a": np.array([2.0])})
        rows = stats.summary_rows()
        assert [r[0] for r in rows] == ["a", "b"]
