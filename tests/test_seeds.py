"""Multi-seed experiment statistics."""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, SeedStats, run_seeds
from repro.errors import ConfigurationError
from repro.traces.distributions import ConstantSize
from repro.traces.generator import WorkloadConfig, generate_workload


def factory(seed):
    cfg = WorkloadConfig(
        num_coflows=8, num_ports=4, size_dist=ConstantSize(2.0), width=2,
        arrival_rate=2.0,
    )
    return generate_workload(cfg, np.random.default_rng(seed))


SETUP = ExperimentSetup(num_ports=4, bandwidth=1.0, slice_len=0.01)


class TestRunSeeds:
    def test_collects_per_policy_samples(self):
        stats = run_seeds(["fifo", "sebf"], factory, SETUP, seeds=range(3))
        assert set(stats.samples) == {"fifo", "sebf"}
        assert len(stats.samples["fifo"]) == 3
        assert stats.metric == "avg_cct"

    def test_mean_and_std(self):
        stats = SeedStats("m", {"a": np.array([1.0, 3.0])})
        assert stats.mean("a") == 2.0
        assert stats.std("a") == pytest.approx(np.std([1, 3], ddof=1))

    def test_std_single_sample_is_zero(self):
        stats = SeedStats("m", {"a": np.array([5.0])})
        assert stats.std("a") == 0.0

    def test_speedup_and_win_rate(self):
        stats = SeedStats(
            "m", {"base": np.array([2.0, 4.0]), "ours": np.array([1.0, 2.0])}
        )
        assert stats.speedup_mean("base", "ours") == pytest.approx(2.0)
        assert stats.win_rate("ours", "base") == 1.0
        assert stats.win_rate("base", "ours") == 0.0

    def test_sebf_beats_fifo_across_seeds(self):
        stats = run_seeds(["fifo", "sebf"], factory, SETUP, seeds=range(4))
        assert stats.win_rate("sebf", "fifo") >= 0.75

    def test_requires_seeds(self):
        with pytest.raises(ConfigurationError):
            run_seeds(["fifo"], factory, SETUP, seeds=[])

    def test_summary_rows_sorted(self):
        stats = SeedStats("m", {"b": np.array([1.0]), "a": np.array([2.0])})
        rows = stats.summary_rows()
        assert [r[0] for r in rows] == ["a", "b"]


class TestRunSeedsParallel:
    """The (seed × policy) grid through the process pool.

    ``factory`` above is module-level, so it pickles into the workers and
    is re-invoked there per seed (the workload itself never crosses the
    process boundary).
    """

    def test_pool_samples_equal_sequential(self):
        seq = run_seeds(["fifo", "sebf", "fvdf"], factory, SETUP,
                        seeds=range(3))
        par = run_seeds(["fifo", "sebf", "fvdf"], factory, SETUP,
                        seeds=range(3), parallel=2, cache=False)
        assert set(par.samples) == set(seq.samples)
        for name in seq.samples:
            # Exact equality: in-worker regeneration must be bit-identical.
            assert par.samples[name].tolist() == seq.samples[name].tolist()

    def test_pool_stats_match_sequential(self):
        seq = run_seeds(["sebf", "fvdf"], factory, SETUP, seeds=range(4))
        par = run_seeds(["sebf", "fvdf"], factory, SETUP, seeds=range(4),
                        parallel=2, cache=False)
        assert par.mean("fvdf") == seq.mean("fvdf")
        assert par.std("fvdf") == seq.std("fvdf")
        assert par.win_rate("fvdf", "sebf") == seq.win_rate("fvdf", "sebf")
        assert par.speedup_mean("sebf", "fvdf") == seq.speedup_mean(
            "sebf", "fvdf"
        )

    def test_pool_non_summary_metric_falls_back_to_full_results(self):
        # max_cct is not in SUMMARY_METRICS, so the pool ships full
        # SimulationResults back instead of compact summaries.
        seq = run_seeds(["fifo", "sebf"], factory, SETUP, seeds=range(2),
                        metric="max_cct")
        par = run_seeds(["fifo", "sebf"], factory, SETUP, seeds=range(2),
                        metric="max_cct", parallel=2, cache=False)
        for name in seq.samples:
            assert par.samples[name].tolist() == seq.samples[name].tolist()

    def test_pool_with_tagged_factory_caches(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(root=tmp_path, enabled=True)
        kw = dict(seeds=range(2), parallel=2, cache=cache,
                  workload_tag="seeds-const8")
        cold = run_seeds(["fifo", "sebf"], factory, SETUP, **kw)
        assert cache.misses == 4 and cache.hits == 0
        warm = run_seeds(["fifo", "sebf"], factory, SETUP, **kw)
        assert cache.hits == 4
        for name in cold.samples:
            assert warm.samples[name].tolist() == cold.samples[name].tolist()

    def test_untagged_factory_runs_uncached(self, tmp_path):
        from repro.runner import ResultCache

        cache = ResultCache(root=tmp_path, enabled=True)
        stats = run_seeds(["fifo"], factory, SETUP, seeds=range(2),
                          parallel=2, cache=cache)
        assert len(stats.samples["fifo"]) == 2
        assert cache.hits == 0 and cache.misses == 0  # digest() is None
        assert list(tmp_path.iterdir()) == []
