"""Trigger-kind coalescing at tied event boundaries.

FVDF's starvation-freedom guarantee needs the Upgrade step to fire at every
arrival/completion (Pseudocode 3), so the engine must not lose trigger
kinds when several events land on the same slice boundary.  The regression
tests here fail on the pre-fix ``_horizon_slices`` (which kept only the
first kind on ties); the hypothesis property checks the delivered trigger
kinds against the events that actually occurred, for arbitrary workloads.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.codecs import Codec
from repro.compression.engine import CompressionEngine
from repro.core.coflow import Coflow
from repro.core.events import EventKind, ScheduleTrigger
from repro.core.flow import Flow
from repro.core.scheduler import Allocation
from repro.core.simulator import SliceSimulator
from repro.fabric.bigswitch import BigSwitch
from repro.obs import Observability
from repro.schedulers import make_scheduler


def _sim(num_ports=2, bandwidth=1.0, policy="fifo", obs=None, compression=None):
    return SliceSimulator(
        BigSwitch(num_ports, bandwidth),
        make_scheduler(policy),
        slice_len=0.01,
        compression=compression,
        obs=obs,
    )


class TestHorizonSlicesCoalescing:
    """Unit-level regression: the pre-fix code returned only the first kind."""

    def test_tied_arrival_and_completion_yield_both_kinds(self):
        sim = _sim()
        # c1's single flow drains at rate 1.0 -> completes at t=1.0,
        # exactly when c2 arrives.
        sim.submit(Coflow([Flow(src=0, dst=1, size=1.0, flow_id=0)], arrival=0.0))
        sim.submit(Coflow([Flow(src=1, dst=0, size=1.0, flow_id=1)], arrival=1.0))
        sim._activate_due()
        view = sim._build_view(ScheduleTrigger({EventKind.START}))
        n, kinds = sim._horizon_slices(view, Allocation(rates=np.array([1.0])), None)
        assert n == 100
        assert kinds == {EventKind.ARRIVAL, EventKind.COMPLETION}

    def test_tied_raw_exhaustion_is_not_dropped(self):
        engine = CompressionEngine(
            codec=Codec(name="t", speed=1.0, decompression_speed=4.0, ratio=0.5),
            size_dependent=False,
        )
        sim = _sim(policy="fvdf", compression=engine)
        # Compressing at R=1.0 exhausts raw at t=1.0; c2 also arrives then.
        sim.submit(
            Coflow([Flow(src=0, dst=1, size=1.0, flow_id=0, compressible=True)],
                   arrival=0.0)
        )
        sim.submit(Coflow([Flow(src=1, dst=0, size=1.0, flow_id=1)], arrival=1.0))
        sim._activate_due()
        view = sim._build_view(ScheduleTrigger({EventKind.START}))
        alloc = Allocation(
            rates=np.array([0.0]), compress=np.array([True])
        )
        _, kinds = sim._horizon_slices(view, alloc, None)
        assert EventKind.RAW_EXHAUSTED in kinds
        assert EventKind.ARRIVAL in kinds

    def test_events_within_the_jump_window_are_coalesced(self):
        sim = _sim()
        # Arrival lands mid-slice at t=0.005; the completion at the first
        # boundary (t=0.01) takes effect at the same decision point, so
        # both kinds must be reported.
        sim.submit(Coflow([Flow(src=0, dst=1, size=0.01, flow_id=0)], arrival=0.0))
        sim.submit(Coflow([Flow(src=1, dst=0, size=1.0, flow_id=1)], arrival=0.005))
        sim._activate_due()
        view = sim._build_view(ScheduleTrigger({EventKind.START}))
        n, kinds = sim._horizon_slices(view, Allocation(rates=np.array([1.0])), None)
        assert n == 1
        assert kinds == {EventKind.ARRIVAL, EventKind.COMPLETION}

    def test_distant_events_are_not_coalesced(self):
        sim = _sim()
        sim.submit(Coflow([Flow(src=0, dst=1, size=1.0, flow_id=0)], arrival=0.0))
        sim.submit(Coflow([Flow(src=1, dst=0, size=1.0, flow_id=1)], arrival=5.0))
        sim._activate_due()
        view = sim._build_view(ScheduleTrigger({EventKind.START}))
        n, kinds = sim._horizon_slices(view, Allocation(rates=np.array([1.0])), None)
        assert n == 100
        assert kinds == {EventKind.COMPLETION}


class TestTiedBoundaryEndToEnd:
    def test_tracer_shows_both_kinds_delivered(self):
        """The acceptance-criterion replay: a tied arrival+completion
        boundary must reach the scheduler as {ARRIVAL, COMPLETION}."""
        obs = Observability()
        sim = _sim(obs=obs)
        sim.submit(Coflow([Flow(src=0, dst=1, size=1.0, flow_id=0)], arrival=0.0))
        sim.submit(Coflow([Flow(src=1, dst=0, size=1.0, flow_id=1)], arrival=1.0))
        sim.run()
        # the fast-forward jump from t=0 must report both event kinds …
        jump = obs.tracer.of_kind("jump")[0]
        assert set(jump.data["kinds"]) == {EventKind.ARRIVAL, EventKind.COMPLETION}
        # … and the decision at t=1.0 must deliver both to the scheduler.
        [decision] = [
            r for r in obs.tracer.of_kind("decision") if abs(r.t - 1.0) < 1e-9
        ]
        assert {EventKind.ARRIVAL, EventKind.COMPLETION} <= set(decision.data["kinds"])

    def test_fvdf_ages_priority_class_at_tied_boundary(self):
        """The starvation-freedom consequence: a coflow waiting through a
        tied arrival+completion boundary must receive its upgrade."""
        obs = Observability()
        sim = SliceSimulator(
            BigSwitch(2, 1.0), make_scheduler("fvdf-nocompress"),
            slice_len=0.01, obs=obs,
        )
        # Two same-port coflows: the later one waits (zero service) while
        # the first drains; a third coflow arrives exactly at the first's
        # completion instant.
        sim.submit(Coflow([Flow(src=0, dst=1, size=1.0, flow_id=0)], arrival=0.0))
        sim.submit(Coflow([Flow(src=0, dst=1, size=1.0, flow_id=1)], arrival=0.5))
        sim.submit(Coflow([Flow(src=1, dst=0, size=1.0, flow_id=2)], arrival=1.0))
        sim.run()
        assert obs.metrics.value("fvdf.upgrades") >= 1


def _events_by_decision(tracer):
    """Map each traced decision to the arrival/completion records that
    occurred since the previous decision (completions) or at the decision
    instant itself (arrivals).

    The COMPLETION trigger kind is *coflow*-level (a flow finishing while
    its coflow lives reschedules but does not fire the Upgrade step), so
    only coflow completion records — those without a ``flow_id`` — count.
    """
    decisions = [r for r in tracer.of_kind("decision")]
    arrivals = [r.t for r in tracer.of_kind("arrival")]
    completions = [
        r.t for r in tracer.of_kind("completion") if "flow_id" not in r.data
    ]
    prev = -math.inf
    out = []
    for d in decisions:
        occurred = set()
        if any(abs(t - d.t) <= 1e-12 for t in arrivals):
            occurred.add(EventKind.ARRIVAL)
        if any(prev < t <= d.t + 1e-12 for t in completions):
            occurred.add(EventKind.COMPLETION)
        out.append((d, occurred))
        prev = d.t
    return out


@st.composite
def workloads(draw):
    """Small workloads with quantised arrivals/sizes to provoke ties."""
    n = draw(st.integers(min_value=1, max_value=5))
    coflows = []
    for i in range(n):
        arrival = draw(st.integers(min_value=0, max_value=8)) * 0.25
        width = draw(st.integers(min_value=1, max_value=3))
        flows = []
        for j in range(width):
            size = draw(st.integers(min_value=1, max_value=8)) * 0.25
            src = draw(st.integers(min_value=0, max_value=3))
            dst = draw(st.integers(min_value=0, max_value=3))
            flows.append(Flow(src=src, dst=dst, size=size, flow_id=i * 10 + j))
        coflows.append(Coflow(flows, arrival=arrival, coflow_id=i))
    return coflows


class TestTriggerKindsProperty:
    @settings(max_examples=40, deadline=None)
    @given(workload=workloads(), policy=st.sampled_from(["fifo", "sebf", "fvdf-nocompress"]))
    def test_delivered_kinds_match_observed_events(self, workload, policy):
        """For any workload, the ARRIVAL/COMPLETION kinds handed to the
        scheduler at each boundary equal the set of arrival/completion
        events that actually took effect there."""
        obs = Observability()
        sim = SliceSimulator(
            BigSwitch(4, 1.0), make_scheduler(policy), slice_len=0.01, obs=obs
        )
        sim.submit_many(workload)
        sim.run()
        for decision, occurred in _events_by_decision(obs.tracer):
            delivered = {
                k
                for k in decision.data["kinds"]
                if k in (EventKind.ARRIVAL, EventKind.COMPLETION)
            }
            assert delivered == occurred, (
                f"at t={decision.t}: delivered {delivered}, occurred {occurred}"
            )
