"""Pool-wide telemetry: worker snapshots, parent-side merge, report build.

Telemetry must be an *observation*, never an influence: enabling it does
not change summaries or cache digests, and the merged metrics are
identical no matter how the cells were split across workers (counters
are associative; the merge folds in spec order).
"""

import json

import numpy as np
import pytest

from repro.analysis import ExperimentSetup
from repro.analysis.report import (
    SCHEMA,
    build_report,
    render_report,
    write_report,
)
from repro.analysis.sweepbench import SweepGrid
from repro.obs import Observability
from repro.runner import (
    ResultCache,
    RunSpec,
    RunTelemetry,
    TelemetrySnapshot,
    WorkloadSpec,
    run_specs,
)
from repro.traces.distributions import ConstantSize
from repro.traces.generator import WorkloadConfig
from repro.units import gbps, mbps

SETUP = ExperimentSetup(num_ports=4, bandwidth=mbps(100), slice_len=0.01)

GRID = SweepGrid(
    policies=("sebf", "fvdf"),
    bandwidths=(mbps(100), gbps(1)),
    seeds=(0, 1),
    num_coflows=8,
    num_ports=4,
    max_width=3,
)


def _specs(telemetry=True):
    return GRID.specs(telemetry=telemetry)


def _merged_dump(outcomes, workers, wall_s=1.0):
    tele = RunTelemetry.collect(outcomes, workers=workers, wall_s=wall_s)
    return tele, tele.merged_metrics().dump()


class TestSnapshot:
    def test_capture_from_metrics_run(self):
        obs = Observability(trace=False, metrics=True)
        spec = RunSpec(
            policy="fvdf",
            workload=WorkloadSpec.generated(
                WorkloadConfig(
                    num_coflows=5, num_ports=4,
                    size_dist=ConstantSize(1e6), width=(1, 3),
                    arrival_rate=4.0,
                ),
                seed=3,
            ),
            setup=SETUP,
        )
        from repro.analysis import run_policy

        run_policy(spec.policy, spec.workload.build(), SETUP, obs=obs)
        snap = TelemetrySnapshot.capture("k", "fvdf", obs, 0.5, 0.4)
        assert snap.pid > 0
        assert snap.metrics["engine.decisions"]["value"] > 0
        assert snap.recorder is None  # no recorder attached
        payload = snap.to_json()
        json.dumps(payload)  # JSON-able end to end
        assert payload["policy"] == "fvdf"

    def test_telemetry_flag_not_in_digest(self):
        base = _specs(telemetry=False)[0]
        tele = _specs(telemetry=True)[0]
        assert base.digest() == tele.digest()


class TestPoolMerge:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_merged_counters_worker_invariant(self, workers):
        """The same grid split across any worker count merges to the
        sequential-loop totals (counters are associative)."""
        seq = run_specs(_specs(), workers=0, cache=False)
        _, seq_dump = _merged_dump(seq, workers=0)
        pooled = run_specs(_specs(), workers=workers, cache=False)
        tele, pool_dump = _merged_dump(pooled, workers=workers)
        assert len(tele.snapshots) == GRID.cells
        for name in (
            "engine.decisions", "engine.flow_completions",
            "engine.completions",
        ):
            assert pool_dump[name]["value"] == seq_dump[name]["value"], name
        lat_seq = seq_dump["engine.decision_latency"]
        lat_pool = pool_dump["engine.decision_latency"]
        assert lat_pool["count"] == lat_seq["count"]

    def test_telemetry_does_not_change_summaries(self):
        plain = run_specs(_specs(telemetry=False), workers=0, cache=False)
        telemetered = run_specs(_specs(), workers=2, cache=False)
        assert [o.summary for o in plain] == [o.summary for o in telemetered]
        assert all(o.telemetry is None for o in plain)
        assert all(o.telemetry is not None for o in telemetered)

    def test_cached_cells_carry_no_snapshot(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        cold = run_specs(_specs(), workers=0, cache=cache)
        warm = run_specs(_specs(), workers=0, cache=cache)
        assert all(o.telemetry is not None for o in cold)
        assert all(o.telemetry is None for o in warm)
        tele = RunTelemetry.collect(
            warm, workers=0, wall_s=0.1, cache=cache
        )
        assert tele.cached_cells == GRID.cells
        assert tele.cache_hits == GRID.cells
        assert tele.skew() == 0.0  # nothing executed anywhere

    def test_worker_stats_and_skew(self):
        outs = run_specs(_specs(), workers=2, cache=False)
        tele = RunTelemetry.collect(outs, workers=2, wall_s=1.0)
        stats = tele.worker_stats()
        assert sum(w["cells"] for w in stats.values()) == GRID.cells
        assert all(w["wall_s"] > 0 for w in stats.values())
        assert tele.skew() >= 1.0


class TestReport:
    def _telemetry(self):
        outs = run_specs(_specs(), workers=2, cache=False)
        return RunTelemetry.collect(outs, workers=2, wall_s=1.0)

    def test_build_report_shape(self):
        report = build_report(self._telemetry(), GRID.describe(), label="t")
        assert report["schema"] == SCHEMA
        assert report["cells"] == GRID.cells
        assert set(report["policies"]) == {"sebf", "fvdf"}
        for p in report["policies"].values():
            assert p["decisions"] > 0
            assert p["decision_latency_mean_s"] > 0
            assert p["bytes_sent"] > 0
        assert report["workers_detail"]
        json.dumps(report)  # report.json must serialize as-is

    def test_render_and_write(self, tmp_path):
        report = build_report(self._telemetry(), GRID.describe())
        text = render_report(report)
        assert "sweep telemetry" in text
        assert "fvdf" in text and "sebf" in text
        assert "worker load" in text
        out = write_report(report, tmp_path / "report.json")
        again = json.loads(out.read_text())
        assert again == json.loads(json.dumps(report))


class TestDegenerateInputs:
    """``repro report`` must not divide by zero on empty or all-cached
    inputs: undefined ratios become explicit JSON nulls and render as
    ``n/a``, never as fake measurements."""

    def _zero_decision_telemetry(self):
        # A snapshot whose metrics never saw a decision (e.g. an empty
        # workload, or a run with metrics disabled mid-flight).
        snap = TelemetrySnapshot(
            key="empty", policy="fvdf", pid=1,
            wall_s=0.01, cpu_s=0.01, peak_rss_kb=1000, metrics={},
        )
        return RunTelemetry(snapshots=[snap], workers=1, wall_s=0.01)

    def test_zero_decisions_yield_nulls_not_zero_division(self):
        report = build_report(
            self._zero_decision_telemetry(), {"mode": "test"}
        )
        p = report["policies"]["fvdf"]
        assert p["decisions"] == 0
        assert p["decision_latency_mean_s"] is None
        assert p["core_claims_per_decision"] is None
        json.dumps(report)  # nulls must serialize

    def test_zero_decisions_render_as_na(self):
        report = build_report(
            self._zero_decision_telemetry(), {"mode": "test"}
        )
        text = render_report(report)
        assert "n/a" in text
        assert "nan" not in text.lower()

    def test_all_cache_hit_sweep_has_null_skew(self, tmp_path):
        cache = ResultCache(root=tmp_path, enabled=True)
        run_specs(_specs(), workers=0, cache=cache)  # cold fill
        warm = run_specs(_specs(), workers=0, cache=cache)
        tele = RunTelemetry.collect(
            warm, workers=0, wall_s=0.1, cache=cache
        )
        assert tele.skew() == 0.0  # the method itself stays a float
        report = build_report(tele, GRID.describe())
        assert report["skew"] is None  # ...but the report says "undefined"
        assert report["executed_cells"] == 0
        assert report["cached_cells"] == GRID.cells
        assert report["policies"] == {}  # no snapshots → no per-policy rows
        text = render_report(report)  # renders without dividing by zero
        assert "0 executed" in text
        json.dumps(report)

    def test_single_worker_run_reports_cleanly(self):
        outs = run_specs(_specs(), workers=1, cache=False)
        tele = RunTelemetry.collect(outs, workers=1, wall_s=1.0)
        report = build_report(tele, GRID.describe())
        assert report["workers"] == 1
        assert len(report["workers_detail"]) == 1
        assert report["skew"] is not None and report["skew"] >= 1.0
        text = render_report(report)
        assert "worker load" in text
        # A pooled sweep has no live window (that n/a is intentional);
        # every *aggregate* must still render as a real value.
        assert "live window: n/a" in text
        assert text.count("n/a") == 1
