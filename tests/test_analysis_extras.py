"""Timeline rendering, CSV export, decision hooks, auto-heartbeat,
cluster-on-two-tier — the integration extras."""

import csv
import io

import numpy as np
import pytest

from repro.analysis import (
    ExperimentSetup,
    export_coflows_csv,
    export_flows_csv,
    render_timeline,
    run_policy,
)
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.errors import ConfigurationError
from repro.traces.distributions import ConstantSize
from repro.traces.generator import WorkloadConfig, generate_workload


@pytest.fixture
def result(rng):
    cfg = WorkloadConfig(
        num_coflows=5, num_ports=4, size_dist=ConstantSize(2.0), width=2,
        arrival_rate=2.0,
    )
    workload = generate_workload(cfg, rng)
    return run_policy("sebf", workload, ExperimentSetup(num_ports=4, bandwidth=1.0))


class TestTimeline:
    def test_renders_all_rows(self, result):
        out = render_timeline(result.coflow_results, title="run")
        lines = out.splitlines()
        assert lines[0] == "run"
        assert sum("=" in l for l in lines) == 5

    def test_bar_positions_scale_with_time(self):
        from repro.core.coflow import CoflowResult

        def cr(label, arrival, finish):
            return CoflowResult(
                coflow_id=0, label=label, arrival=arrival, finish=finish,
                finish_physical=finish, size=1, width=1, bytes_sent=1,
                flow_results=[],
            )

        out = render_timeline([cr("early", 0.0, 1.0), cr("late", 9.0, 10.0)],
                              width=20)
        early, late = out.splitlines()[:2]
        assert early.index("=") < late.index("=")

    def test_empty(self):
        assert render_timeline([]) == "(no coflows)"

    def test_max_rows_truncates(self, result):
        out = render_timeline(result.coflow_results, max_rows=2)
        assert "more)" in out

    def test_width_validation(self, result):
        with pytest.raises(ConfigurationError):
            render_timeline(result.coflow_results, width=5)


class TestCsvExport:
    def test_flow_export_shape(self, result):
        buf = io.StringIO()
        export_flows_csv(result, buf)
        buf.seek(0)
        rows = list(csv.DictReader(buf))
        assert len(rows) == len(result.flow_results)
        assert float(rows[0]["fct"]) >= 0

    def test_coflow_export_shape(self, result):
        buf = io.StringIO()
        export_coflows_csv(result, buf)
        buf.seek(0)
        rows = list(csv.DictReader(buf))
        assert len(rows) == 5
        assert rows[0]["met_deadline"] == ""  # no deadlines in this run

    def test_file_destinations(self, result, tmp_path):
        fpath, cpath = tmp_path / "f.csv", tmp_path / "c.csv"
        export_flows_csv(result, fpath)
        export_coflows_csv(result, cpath)
        assert fpath.read_text().startswith("flow_id,")
        assert cpath.read_text().startswith("coflow_id,")


class TestDecisionHook:
    def test_hook_fires_each_decision(self):
        from repro.core.simulator import SliceSimulator
        from repro.fabric.bigswitch import BigSwitch
        from repro.schedulers import make_scheduler

        sim = SliceSimulator(BigSwitch(2, 1.0), make_scheduler("sebf"),
                             slice_len=0.01)
        ticks = []
        sim.on_decision(ticks.append)
        sim.submit(Coflow([Flow(0, 0, 1.0)]))
        sim.submit(Coflow([Flow(1, 1, 2.0)], arrival=0.5))
        res = sim.run()
        assert len(ticks) == res.decision_points
        assert ticks == sorted(ticks)


class TestAutoHeartbeat:
    def test_daemons_report_during_run(self):
        from repro.swallow import SwallowContext
        from repro.core.flow import Flow as F

        SwallowContext.reset_instance()
        ctx = SwallowContext(num_nodes=2, bandwidth=100.0, auto_heartbeat=True)
        from repro.swallow import Executor

        ex = Executor(node=0, pending_flows=[F(0, 1, 500.0)])
        ref = ctx.add(ctx.aggregate(ctx.hook(ex)))
        ctx.engine.run()
        assert ctx.bus.count("master/measurement") >= 2  # both nodes reported
        assert ctx.master.free_cores(0) == 4


class TestClusterTwoTier:
    def test_config_builds_two_tier(self):
        from repro.cluster import ClusterConfig
        from repro.fabric import TwoTierFabric

        cfg = ClusterConfig(num_nodes=8, num_racks=2, uplink_bandwidth=1e6)
        assert isinstance(cfg.build_fabric(), TwoTierFabric)

    def test_config_validation(self):
        from repro.cluster import ClusterConfig

        with pytest.raises(ConfigurationError, match="divide"):
            ClusterConfig(num_nodes=10, num_racks=3)
        with pytest.raises(ConfigurationError, match="requires num_racks"):
            ClusterConfig(num_nodes=8, uplink_bandwidth=1.0)

    def test_oversubscription_slows_jobs(self):
        from repro.cluster import ClusterConfig, ClusterSimulator
        from repro.schedulers import make_scheduler
        from tests.test_cluster import small_job
        from repro.units import gbps

        def run(uplink_ratio):
            cfg = ClusterConfig(
                num_nodes=8, bandwidth=gbps(1), num_racks=2,
                uplink_bandwidth=4 * gbps(1) / uplink_ratio, seed=4,
            )
            sim = ClusterSimulator(cfg, make_scheduler("sebf"))
            sim.submit_jobs([small_job(scale=5e-2)])
            return sim.run()

        flat = run(1)
        squeezed = run(8)
        assert squeezed.stage_means()["shuffle"] >= flat.stage_means()["shuffle"]
