"""Real-codec calibration against stdlib backends."""

import numpy as np
import pytest

from repro.compression.calibrate import (
    calibrated_codec,
    measure_backend,
    synthetic_payload,
)
from repro.errors import ConfigurationError


def test_synthetic_payload_size_exact(rng):
    for size in [100, 4096, 65536]:
        assert len(synthetic_payload(size, rng)) == size


def test_synthetic_payload_entropy_controls_compressibility(rng):
    import zlib

    low = synthetic_payload(65536, rng, entropy=0.0)
    high = synthetic_payload(65536, rng, entropy=1.0)
    assert len(zlib.compress(low)) < len(zlib.compress(high))


def test_synthetic_payload_validation(rng):
    with pytest.raises(ConfigurationError):
        synthetic_payload(0, rng)
    with pytest.raises(ConfigurationError):
        synthetic_payload(100, rng, entropy=2.0)


def test_measure_backend_roundtrip(rng):
    point = measure_backend("zlib", 64 * 1024, rng, repeats=1)
    assert 0 < point.ratio < 1
    assert point.compress_speed > 0
    assert point.decompress_speed > 0


def test_measure_backend_unknown(rng):
    with pytest.raises(ConfigurationError):
        measure_backend("rar", 1024, rng)


def test_ratio_improves_with_size_like_table3(rng):
    """The paper's Table III shape holds for a real codec too: larger
    payloads compress at least as well as tiny ones."""
    small = measure_backend("zlib", 2 * 1024, rng, repeats=1)
    large = measure_backend("zlib", 512 * 1024, rng, repeats=1)
    assert large.ratio <= small.ratio + 0.02


def test_calibrated_codec_is_usable():
    codec = calibrated_codec("zlib", size=128 * 1024)
    assert codec.name == "zlib-measured"
    assert 0.02 <= codec.ratio <= 0.98
    assert codec.disposal_speed > 0
