"""Offline tools: fixed-order replay and exhaustive optima."""

import numpy as np
import pytest

from repro.analysis import ExperimentSetup, run_policy
from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.core.offline import (
    MAX_EXHAUSTIVE_COFLOWS,
    ExhaustiveResult,
    FixedOrderScheduler,
    exhaustive_best_order,
)
from repro.core.simulator import SliceSimulator
from repro.errors import ConfigurationError
from repro.fabric.bigswitch import BigSwitch


def sample_coflows():
    return [
        Coflow([Flow(0, 0, 4.0)], label="big"),
        Coflow([Flow(0, 0, 1.0)], label="small"),
        Coflow([Flow(1, 1, 2.0)], label="side"),
    ]


def run_fixed(order, coflows):
    sim = SliceSimulator(BigSwitch(2, 1.0), FixedOrderScheduler(order),
                         slice_len=0.01)
    sim.submit_many(coflows)
    return sim.run()


class TestFixedOrder:
    def test_respects_given_order(self):
        coflows = sample_coflows()
        big, small, _ = coflows
        res = run_fixed([big.coflow_id, small.coflow_id], coflows)
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["big"] == pytest.approx(4.0)
        assert cct["small"] == pytest.approx(5.0)

    def test_reversed_order_flips_outcome(self):
        coflows = sample_coflows()
        big, small, _ = coflows
        res = run_fixed([small.coflow_id, big.coflow_id], coflows)
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["small"] == pytest.approx(1.0)
        assert cct["big"] == pytest.approx(5.0)

    def test_unlisted_coflows_rank_last(self):
        coflows = sample_coflows()
        big = coflows[0]
        res = run_fixed([big.coflow_id], coflows)
        cct = {c.label: c.cct for c in res.coflow_results}
        assert cct["big"] == pytest.approx(4.0)


class TestExhaustive:
    def test_finds_smallest_first_on_single_port(self):
        coflows = sample_coflows()
        best = exhaustive_best_order(coflows, lambda: BigSwitch(2, 1.0))
        # optimal: small (1) before big (4); side is independent.
        small_id = coflows[1].coflow_id
        big_id = coflows[0].coflow_id
        assert best.best_order.index(small_id) < best.best_order.index(big_id)
        assert best.evaluated == 6
        # optimal avg CCT: (5 + 1 + 2)/3
        assert best.best_value == pytest.approx(8.0 / 3.0)

    def test_sebf_matches_optimum_here(self):
        """On this instance SEBF's order is provably optimal."""
        coflows = sample_coflows()
        best = exhaustive_best_order(coflows, lambda: BigSwitch(2, 1.0))
        res = run_policy(
            "sebf", coflows, ExperimentSetup(num_ports=2, bandwidth=1.0)
        )
        assert res.avg_cct == pytest.approx(best.best_value, rel=1e-6)

    def test_heuristics_never_beat_the_optimum(self, rng):
        coflows = []
        for k in range(4):
            flows = [
                Flow(int(rng.integers(0, 3)), int(rng.integers(0, 3)),
                     float(rng.uniform(0.5, 4.0)))
                for _ in range(int(rng.integers(1, 3)))
            ]
            coflows.append(Coflow(flows, arrival=0.0))
        best = exhaustive_best_order(coflows, lambda: BigSwitch(3, 1.0))
        for policy in ["sebf", "scf", "coflow-fifo", "fvdf-nocompress"]:
            res = run_policy(
                policy, coflows, ExperimentSetup(num_ports=3, bandwidth=1.0)
            )
            assert res.avg_cct >= best.best_value - 1e-6, policy

    def test_rejects_oversized_instances(self):
        coflows = [Coflow([Flow(0, 0, 1.0)]) for _ in range(MAX_EXHAUSTIVE_COFLOWS + 1)]
        with pytest.raises(ConfigurationError, match="evaluations"):
            exhaustive_best_order(coflows, lambda: BigSwitch(1, 1.0))

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            exhaustive_best_order([], lambda: BigSwitch(1, 1.0))
