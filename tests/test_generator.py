"""Synthetic coflow workload generator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.traces.distributions import ConstantSize
from repro.traces.generator import (
    WorkloadConfig,
    generate_flow_workload,
    generate_workload,
    workload_stats,
)


def cfg(**kw):
    base = dict(num_coflows=20, num_ports=8, size_dist=ConstantSize(10.0))
    base.update(kw)
    return WorkloadConfig(**base)


class TestConfigValidation:
    def test_bad_counts(self):
        with pytest.raises(ConfigurationError):
            cfg(num_coflows=0)
        with pytest.raises(ConfigurationError):
            cfg(num_ports=0)

    def test_bad_width(self):
        with pytest.raises(ConfigurationError):
            cfg(width=(5, 2))
        with pytest.raises(ConfigurationError):
            cfg(width=0)

    def test_bad_rate_and_fraction(self):
        with pytest.raises(ConfigurationError):
            cfg(arrival_rate=0.0)
        with pytest.raises(ConfigurationError):
            cfg(compressible_fraction=1.5)


class TestGeneration:
    def test_count_and_ports_in_range(self, rng):
        ws = generate_workload(cfg(), rng)
        assert len(ws) == 20
        for c in ws:
            for f in c.flows:
                assert 0 <= f.src < 8 and 0 <= f.dst < 8

    def test_fixed_width(self, rng):
        ws = generate_workload(cfg(width=3), rng)
        assert all(c.width == 3 for c in ws)

    def test_width_range(self, rng):
        ws = generate_workload(cfg(width=(2, 6), num_coflows=200), rng)
        widths = {c.width for c in ws}
        assert widths <= set(range(2, 7))
        assert len(widths) > 1

    def test_batch_arrivals_at_zero(self, rng):
        ws = generate_workload(cfg(arrival_rate=None), rng)
        assert all(c.arrival == 0.0 for c in ws)

    def test_poisson_arrivals_sorted_from_zero(self, rng):
        ws = generate_workload(cfg(arrival_rate=2.0), rng)
        arr = [c.arrival for c in ws]
        assert arr[0] == 0.0
        assert arr == sorted(arr)

    def test_poisson_rate_roughly_matches(self, rng):
        ws = generate_workload(cfg(num_coflows=500, arrival_rate=2.0), rng)
        horizon = ws[-1].arrival
        assert 500 / horizon == pytest.approx(2.0, rel=0.2)

    def test_compressible_fraction(self, rng):
        ws = generate_workload(
            cfg(num_coflows=200, width=4, compressible_fraction=0.25), rng
        )
        flags = [f.compressible for c in ws for f in c.flows]
        assert np.mean(flags) == pytest.approx(0.25, abs=0.06)

    def test_deterministic_given_seed(self):
        a = generate_workload(cfg(), np.random.default_rng(5))
        b = generate_workload(cfg(), np.random.default_rng(5))
        assert [f.size for c in a for f in c.flows] == [
            f.size for c in b for f in c.flows
        ]
        assert [(f.src, f.dst) for c in a for f in c.flows] == [
            (f.src, f.dst) for c in b for f in c.flows
        ]


class TestFlowWorkload:
    def test_all_singletons(self, rng):
        singles = generate_flow_workload(cfg(width=(2, 4)), rng)
        assert all(c.width == 1 for c in singles)

    def test_preserves_total_bytes(self, rng):
        grouped = generate_workload(cfg(width=3), np.random.default_rng(9))
        singles = generate_flow_workload(cfg(width=3), np.random.default_rng(9))
        assert sum(c.size for c in grouped) == pytest.approx(
            sum(c.size for c in singles)
        )


class TestSizeFiltering:
    def make(self, rng):
        from repro.traces.distributions import LogNormalSizes

        return generate_workload(
            cfg(num_coflows=50, width=(1, 4),
                size_dist=LogNormalSizes(median=100.0, sigma=1.0)),
            rng,
        )

    def test_keep_all_is_identity(self, rng):
        ws = self.make(rng)
        from repro.traces.generator import filter_workload_by_size

        assert filter_workload_by_size(ws, 1.0) == ws

    def test_drops_smallest_flows(self, rng):
        from repro.traces.generator import filter_workload_by_size

        ws = self.make(rng)
        filtered = filter_workload_by_size(ws, 0.9)
        n_before = sum(c.width for c in ws)
        n_after = sum(c.width for c in filtered)
        assert n_after == pytest.approx(0.9 * n_before, rel=0.05)
        min_kept = min(f.size for c in filtered for f in c.flows)
        dropped = [
            f.size for c in ws for f in c.flows
        ]
        assert min_kept >= np.quantile(dropped, 0.1) * 0.99

    def test_returns_fresh_objects(self, rng):
        from repro.traces.generator import filter_workload_by_size

        ws = self.make(rng)
        filtered = filter_workload_by_size(ws, 0.9)
        originals = {id(c) for c in ws}
        assert all(id(c) not in originals for c in filtered)

    def test_bad_fraction(self, rng):
        from repro.traces.generator import filter_workload_by_size

        with pytest.raises(ConfigurationError):
            filter_workload_by_size(self.make(rng), 0.0)


def test_workload_stats(rng):
    ws = generate_workload(cfg(width=2), rng)
    stats = workload_stats(ws)
    assert stats["num_coflows"] == 20
    assert stats["num_flows"] == 40
    assert stats["total_bytes"] == pytest.approx(400.0)
    assert stats["mean_flow_size"] == pytest.approx(10.0)
