"""Observability layer: tracer, metrics, profiler, JSONL round-trip."""

import io
import json

import numpy as np
import pytest

from repro.analysis import (
    decision_timeline,
    iter_trace,
    kinds_at,
    read_trace,
    trace_summary,
)
from repro.errors import ProtocolError, ReproError
from repro.obs import NULL_OBS, NULL_PROFILER, NULL_TRACER, Observability
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.trace import TraceRecord, Tracer, record_from_json, record_to_json
from repro.scenarios import run_motivating_example
from repro.schedulers import make_scheduler
from repro.swallow.transport import MessageBus


class TestTracer:
    def test_emit_and_query(self):
        tr = Tracer()
        tr.emit(0.0, "decision", kinds={"ARRIVAL"}, n_flows=2)
        tr.emit(0.5, "completion", flow_id=7)
        tr.emit(0.5, "arrival", coflow_id=1)
        assert len(tr) == 3
        assert [r.kind for r in tr.of_kind("completion")] == ["completion"]
        assert tr.kinds_at(0.5) == {"completion", "arrival"}
        assert tr.counts() == {"decision": 1, "completion": 1, "arrival": 1}

    def test_limit_drops_oldest(self):
        tr = Tracer(limit=2)
        for i in range(5):
            tr.emit(float(i), "decision")
        assert len(tr) == 2
        assert tr.dropped == 3
        assert tr.records[0].t == 3.0

    def test_sink_streams_records(self):
        seen = []
        tr = Tracer(sink=seen.append)
        tr.emit(1.0, "arrival", coflow_id=3)
        assert seen == [TraceRecord(1.0, "arrival", {"coflow_id": 3})]

    def test_null_tracer_records_nothing(self):
        NULL_TRACER.emit(0.0, "decision")
        assert len(NULL_TRACER) == 0
        assert not NULL_TRACER.enabled

    def test_json_round_trip_coerces_types(self):
        from repro.core.events import EventKind

        rec = TraceRecord(
            0.25,
            "decision",
            {"kinds": {EventKind.ARRIVAL, EventKind.COMPLETION},
             "n_flows": np.int64(3)},
        )
        line = record_to_json(rec)
        back = record_from_json(line)
        assert back.t == 0.25
        assert back.kind == "decision"
        assert back.data["kinds"] == ["ARRIVAL", "COMPLETION"]
        assert back.data["n_flows"] == 3
        # the line itself is plain JSON
        assert json.loads(line)["kind"] == "decision"


class TestMetrics:
    def test_counter_gauge_histogram(self):
        mx = MetricsRegistry()
        mx.counter("c").inc()
        mx.counter("c").inc(2.5)
        mx.gauge("g").set(7)
        for v in (1.0, 3.0):
            mx.histogram("h").observe(v)
        assert mx.value("c") == 3.5
        assert mx.value("g") == 7.0
        h = mx.histogram("h")
        assert h.count == 2 and h.mean == 2.0 and h.min == 1.0 and h.max == 3.0
        snap = mx.as_dict()
        assert snap["c"] == 3.5
        assert snap["h"]["count"] == 2
        assert "c: 3.5" in mx.render()

    def test_type_conflict_raises(self):
        mx = MetricsRegistry()
        mx.counter("x")
        with pytest.raises(TypeError):
            mx.gauge("x")

    def test_disabled_registry_is_noop(self):
        mx = MetricsRegistry(enabled=False)
        mx.counter("c").inc(10)
        mx.histogram("h").observe(1.0)
        assert mx.names() == []
        assert mx.value("c") == 0.0


class TestProfiler:
    def test_sections_accumulate(self):
        prof = Profiler()
        with prof.section("work"):
            pass
        prof.add("work", 0.5)
        stats = prof.stats("work")
        assert stats.count == 2
        assert stats.total >= 0.5
        assert "work" in prof.report()

    def test_null_profiler(self):
        with NULL_PROFILER.section("x"):
            pass
        assert not NULL_PROFILER.enabled
        assert NULL_PROFILER.report() == "(no sections profiled)"


class TestObservabilityBundle:
    def test_defaults(self):
        obs = Observability()
        assert obs.tracer.enabled and obs.metrics.enabled
        assert not obs.profiler.enabled
        assert obs.enabled

    def test_null_obs_disabled(self):
        assert not NULL_OBS.enabled
        assert not NULL_OBS.tracer.enabled
        assert not NULL_OBS.metrics.enabled
        assert not NULL_OBS.profiler.enabled


class TestEngineTracing:
    def test_run_emits_records_and_metrics(self):
        obs = Observability(profile=True)
        res = run_motivating_example(make_scheduler("fvdf"), obs=obs)
        counts = obs.tracer.counts()
        # every decision point produced decision/order/rates/jump records
        assert counts["decision"] == res.decision_points
        assert counts["order"] == res.decision_points
        assert counts["jump"] == res.decision_points
        assert counts["arrival"] == 2
        # 5 flow completions + 2 coflow completions
        assert counts["completion"] == 7
        assert obs.metrics.value("engine.decisions") == res.decision_points
        assert obs.metrics.value("engine.completions") == 2
        assert obs.metrics.histogram("engine.decision_latency").count == res.decision_points
        assert obs.metrics.value("engine.bytes_sent") == pytest.approx(
            res.total_bytes_sent
        )
        assert obs.profiler.stats("schedule").count == res.decision_points
        assert obs.profiler.stats("integrate").count == res.decision_points

    def test_results_identical_with_and_without_obs(self):
        res_plain = run_motivating_example(make_scheduler("fvdf"))
        res_obs = run_motivating_example(
            make_scheduler("fvdf"), obs=Observability(profile=True)
        )
        assert res_obs.avg_cct == res_plain.avg_cct
        assert res_obs.avg_fct == res_plain.avg_fct
        assert res_obs.decision_points == res_plain.decision_points

    def test_jsonl_round_trip_through_analysis_reader(self, tmp_path):
        obs = Observability()
        run_motivating_example(make_scheduler("fvdf"), obs=obs)
        path = tmp_path / "run.jsonl"
        n = obs.tracer.dump_jsonl(str(path))
        assert n == len(obs.tracer)
        records = read_trace(str(path))
        assert len(records) == n
        assert trace_summary(records) == obs.tracer.counts()
        decisions = decision_timeline(records)
        assert decisions[0].data["kinds"] == ["ARRIVAL", "START"]
        # kinds_at mirrors the in-memory tracer view
        t0 = decisions[0].t
        assert "decision" in kinds_at(records, t0)
        # streaming reader agrees with the batch reader
        assert list(iter_trace(str(path))) == records

    def test_reader_rejects_malformed_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 0.0, "kind": "decision"}\nnot json\n')
        with pytest.raises(ReproError, match="line 2"):
            read_trace(str(path))

    def test_dump_to_handle(self):
        tr = Tracer()
        tr.emit(0.0, "arrival", coflow_id=0)
        buf = io.StringIO()
        assert tr.dump_jsonl(buf) == 1
        assert read_trace(io.StringIO(buf.getvalue()))[0].kind == "arrival"


class TestBusObservability:
    def test_publish_counts_per_topic(self):
        obs = Observability()
        bus = MessageBus(obs=obs)
        bus.subscribe("a", lambda m: None)
        bus.publish("a", 1)
        bus.publish("a", 2)
        assert obs.metrics.value("bus.messages.a") == 2
        recs = obs.tracer.of_kind("bus")
        assert len(recs) == 2
        assert recs[0].data["topic"] == "a"
        assert recs[0].t == -1.0  # no clock attached

    def test_clock_stamps_records(self):
        obs = Observability()
        bus = MessageBus(obs=obs)
        bus.clock = lambda: 4.5
        bus.subscribe("a", lambda m: None)
        bus.publish("a", 1)
        assert bus.obs.tracer.of_kind("bus")[0].t == 4.5


class TestCliTrace:
    def test_trace_fig4_round_trips(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fig4.jsonl"
        assert main(["trace", "fig4", "--policy", "fvdf",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "trace records" in printed
        assert "engine.decisions" in printed
        records = read_trace(str(out))
        summary = trace_summary(records)
        assert summary["decision"] >= 1
        assert summary["completion"] >= 1

    def test_trace_synthetic_to_stdout(self, capsys):
        from repro.cli import main

        assert main(["trace", "synthetic", "--coflows", "4", "--ports", "4",
                     "--policy", "sebf", "--out", "-", "--profile"]) == 0
        out = capsys.readouterr().out
        assert '"kind":"decision"' in out
        assert "hot sections" in out
