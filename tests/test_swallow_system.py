"""The Swallow system layer: message bus, master, worker, Table IV API."""

import numpy as np
import pytest

from repro.compression.engine import CompressionEngine
from repro.core.flow import Flow
from repro.cpu.cores import CpuModel
from repro.errors import ConfigurationError, ProtocolError
from repro.swallow import (
    BlockId,
    CoflowInfo,
    CoflowRef,
    Executor,
    FlowInfo,
    MeasurementMsg,
    MessageBus,
    SwallowContext,
    SwallowMaster,
    SwallowWorker,
    hook_executor,
)
from repro.units import MB, gbps, mbps


class TestMessageBus:
    def test_publish_subscribe(self):
        bus = MessageBus()
        seen = []
        bus.subscribe("t", seen.append)
        bus.publish("t", 42)
        assert seen == [42]
        assert bus.count("t") == 1
        assert bus.total_messages == 1

    def test_multiple_subscribers(self):
        bus = MessageBus()
        a, b = [], []
        bus.subscribe("t", a.append)
        bus.subscribe("t", b.append)
        bus.publish("t", "x")
        assert a == b == ["x"]

    def test_unrouted_message_raises(self):
        bus = MessageBus()
        with pytest.raises(ProtocolError, match="no subscriber"):
            bus.publish("nobody", 1)

    def test_log_when_enabled(self):
        bus = MessageBus()
        bus.keep_log = True
        bus.subscribe("t", lambda m: None)
        bus.publish("t", "hello")
        assert bus.log == [("t", "hello")]

    def test_handler_may_subscribe_during_delivery(self):
        """Regression: publish() iterates a snapshot, so a handler that
        subscribes another handler mid-delivery must not corrupt the
        iteration — the new handler first sees the *next* publish."""
        bus = MessageBus()
        late = []

        def self_subscriber(msg):
            bus.subscribe("t", late.append)

        bus.subscribe("t", self_subscriber)
        bus.publish("t", 1)
        assert late == []  # not delivered mid-iteration
        bus.publish("t", 2)
        assert late == [2]

    def test_handler_may_unsubscribe_itself_during_delivery(self):
        bus = MessageBus()
        seen = []

        def once(msg):
            seen.append(msg)
            bus.unsubscribe("t", once)

        bus.subscribe("t", once)
        bus.subscribe("t", lambda m: None)  # keeps the topic routed
        bus.publish("t", "a")
        bus.publish("t", "b")
        assert seen == ["a"]

    def test_unsubscribe_unknown_handler_raises(self):
        bus = MessageBus()
        with pytest.raises(ProtocolError, match="not subscribed"):
            bus.unsubscribe("t", lambda m: None)


class TestMessages:
    def test_flowinfo_validation(self):
        with pytest.raises(ConfigurationError):
            FlowInfo(flow_id=1, src=0, dst=0, size=0)

    def test_coflowinfo_aggregates(self):
        info = CoflowInfo(
            flows=(
                FlowInfo(1, 0, 1, 10.0),
                FlowInfo(2, 1, 0, 30.0),
            )
        )
        assert info.size == 40.0
        assert info.width == 2

    def test_empty_coflowinfo_rejected(self):
        with pytest.raises(ConfigurationError):
            CoflowInfo(flows=())

    def test_block_ids_unique(self):
        assert BlockId().value != BlockId().value


class TestWorker:
    def test_hook_captures_flows(self):
        ex = Executor(node=0, pending_flows=[Flow(0, 1, 5.0), Flow(0, 2, 7.0)])
        infos = hook_executor(ex)
        assert [i.size for i in infos] == [5.0, 7.0]
        assert all(i.src == 0 for i in infos)

    def test_daemon_report_reaches_master(self):
        bus = MessageBus()
        master = SwallowMaster(bus, link_bandwidth=1.0)
        cpu = CpuModel(2, cores_per_node=4)
        w = SwallowWorker(1, bus)
        msg = w.report(cpu, t=0.0, bandwidth_free=100.0)
        assert isinstance(msg, MeasurementMsg)
        assert master.free_cores(1) == 4

    def test_block_store_roundtrip(self):
        bus = MessageBus()
        w = SwallowWorker(0, bus, real_compression=True)
        ref = CoflowRef(coflow_id=1)
        bid = BlockId()
        payload = b"hello swallow " * 100
        size, compressed = w.store_block(ref, bid, payload, compress=True)
        assert compressed and size < len(payload)
        assert w.fetch_block(ref, bid) == payload
        assert w.stored_blocks == 0

    def test_fetch_unknown_block(self):
        w = SwallowWorker(0, MessageBus())
        with pytest.raises(ProtocolError, match="unknown block"):
            w.fetch_block(CoflowRef(coflow_id=1), BlockId())


class TestMaster:
    def make(self, bandwidth=mbps(100), compression=True):
        bus = MessageBus()
        eng = CompressionEngine("lz4", size_dependent=False) if compression else None
        return SwallowMaster(bus, link_bandwidth=bandwidth, compression=eng), bus

    def info(self, sizes, flow_ids=None):
        fids = flow_ids or list(range(len(sizes)))
        return CoflowInfo(
            flows=tuple(FlowInfo(fid, 0, 1, s) for fid, s in zip(fids, sizes))
        )

    def test_add_remove_lifecycle(self):
        master, _ = self.make()
        ref = master.add(self.info([10.0]))
        assert master.registered == 1
        master.remove(ref)
        assert master.registered == 0

    def test_remove_unknown(self):
        master, _ = self.make()
        with pytest.raises(ProtocolError):
            master.remove(CoflowRef(coflow_id=99))

    def test_scheduling_orders_by_gamma(self):
        master, _ = self.make()
        big = master.add(self.info([100 * MB], flow_ids=[1]))
        small = master.add(self.info([1 * MB], flow_ids=[2]))
        plan = master.scheduling([big, small])
        assert plan.order[0] == small.coflow_id

    def test_scheduling_unknown_ref(self):
        master, _ = self.make()
        with pytest.raises(ProtocolError):
            master.scheduling([CoflowRef(coflow_id=7)])

    def test_priority_upgrade_reorders(self):
        """An old large coflow eventually outranks a fresh small one."""
        master, _ = self.make()
        big = master.add(self.info([100 * MB], flow_ids=[1]))
        # many arrivals/completions upgrade the big coflow's class
        for k in range(40):
            r = master.add(self.info([1.0], flow_ids=[1000 + k]))
            master.remove(r)
        small = master.add(self.info([1 * MB], flow_ids=[2]))
        plan = master.scheduling([big, small])
        assert plan.order[0] == big.coflow_id

    def test_beta_respects_eq3(self):
        # 100 Mbps: LZ4 wins; 10 Gbps: loses.
        slow, _ = self.make(bandwidth=mbps(100))
        fast, _ = self.make(bandwidth=gbps(10))
        ref_s = slow.add(self.info([10 * MB], flow_ids=[5]))
        ref_f = fast.add(self.info([10 * MB], flow_ids=[5]))
        assert slow.scheduling([ref_s]).compress[5] is True
        assert fast.scheduling([ref_f]).compress[5] is False

    def test_beta_respects_daemon_cores(self):
        master, bus = self.make()
        cpu = CpuModel(2, cores_per_node=2, background=lambda t: 1.0)
        SwallowWorker(0, bus).report(cpu, 0.0, 1.0)  # node 0: zero free cores
        ref = master.add(self.info([10 * MB], flow_ids=[5]))
        assert master.scheduling([ref]).compress[5] is False

    def test_rates_are_minimal_allocation(self):
        master, _ = self.make(bandwidth=100.0, compression=False)
        ref = master.add(
            CoflowInfo(flows=(FlowInfo(1, 0, 1, 200.0), FlowInfo(2, 3, 2, 100.0)))
        )
        plan = master.scheduling([ref])
        # disjoint ports: gamma = 200/100 = 2 s; rates = size / gamma
        assert plan.rates[1] == pytest.approx(100.0)
        assert plan.rates[2] == pytest.approx(50.0)

    def test_gamma_accounts_for_shared_ports(self):
        """Two flows from one sender: the port carries both (Eq. 8)."""
        master, _ = self.make(bandwidth=100.0, compression=False)
        ref = master.add(
            CoflowInfo(flows=(FlowInfo(1, 0, 1, 200.0), FlowInfo(2, 0, 2, 100.0)))
        )
        info = master._coflows[ref.coflow_id].info
        assert master.gamma(info) == pytest.approx(3.0)  # 300 B / 100 B/s
        plan = master.scheduling([ref])
        # minimal rates finish both by gamma and fit the shared port.
        assert plan.rates[1] + plan.rates[2] == pytest.approx(100.0)


class TestSwallowContext:
    def make_ctx(self, **kw):
        SwallowContext.reset_instance()
        defaults = dict(num_nodes=3, bandwidth=1000.0, slice_len=0.01,
                        real_compression=True)
        defaults.update(kw)
        return SwallowContext(**defaults)

    def shuffle_example(self, ctx):
        ex = Executor(node=0, pending_flows=[Flow(0, 1, 500.0), Flow(0, 2, 800.0)])
        infos = ctx.hook(ex)
        cinfo = ctx.aggregate(infos, label="shuffle-0")
        return ctx.add(cinfo), infos

    def test_full_table4_workflow(self):
        ctx = self.make_ctx()
        ref, infos = self.shuffle_example(ctx)
        plan = ctx.scheduling([ref])
        assert set(plan.compress) == {i.flow_id for i in infos}
        ctx.alloc(plan)
        b1, b2 = BlockId(), BlockId()
        ctx.push(ref, b1, b"alpha" * 50)
        ctx.push(ref, b2, b"beta" * 50)
        assert ctx.pull(ref, b1) == b"alpha" * 50
        assert ctx.pull(ref, b2) == b"beta" * 50
        ctx.remove(ref)
        res = ctx.results()
        assert len(res.coflow_results) == 1
        assert ctx.bus.count("master/callback") == 2
        assert ctx.bus.count("worker/alloc") == 3

    def test_singleton(self):
        ctx = self.make_ctx()
        assert SwallowContext.get_instance() is ctx

    def test_push_too_many_blocks(self):
        ctx = self.make_ctx()
        ref, _ = self.shuffle_example(ctx)
        ctx.push(ref, BlockId(), b"x")
        ctx.push(ref, BlockId(), b"y")
        with pytest.raises(ProtocolError, match="more blocks"):
            ctx.push(ref, BlockId(), b"z")

    def test_pull_unpushed_block(self):
        ctx = self.make_ctx()
        ref, _ = self.shuffle_example(ctx)
        with pytest.raises(ProtocolError, match="unpushed"):
            ctx.pull(ref, BlockId())

    def test_remove_before_completion(self):
        ctx = self.make_ctx()
        ref, _ = self.shuffle_example(ctx)
        with pytest.raises(ProtocolError, match="before coflow"):
            ctx.remove(ref)

    def test_heartbeat_updates_master(self):
        ctx = self.make_ctx(cores_per_node=8)
        ctx.heartbeat()
        assert ctx.master.free_cores(2) == 8

    def test_compression_disabled_by_option(self):
        ctx = self.make_ctx(smart_compress=False)
        ref, infos = self.shuffle_example(ctx)
        plan = ctx.scheduling([ref])
        assert not any(plan.compress.values())
