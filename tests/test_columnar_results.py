"""Lazy columnar results match the eager dataclass path bit for bit.

The columnar engine (batched ingest/retirement, ``ResultStore``-backed
lazy results) must be an exact behavioural match for the pinned
pre-columnar engine (:class:`repro.core.reference.
PreColumnarSliceSimulator`: scalar per-flow submit, eager per-flow
``FlowResult`` retirement) — same dataclasses, same arrays, same
metrics, on the same workloads.  That equivalence is what licenses the
``BENCH_bigtrace.json`` speedup claim.

Covered here:

* full-trace equivalence across FVDF/SEBF/FAIR on generated and
  FB-synthesized workloads;
* cancellation mid-run (including the "only stamp unset finish_phys"
  rule) and ``run(until=...)`` horizon resume with mid-run submission;
* hypothesis sweeps over tied retirement boundaries (constant sizes,
  clumped arrivals → many flows/coflows retiring in one batch);
* the lazy sequences' contracts: list equality, member object identity
  shared between ``coflow_results[k].flow_results`` and the flat flow
  list, frozen snapshots across resumed runs;
* the metrics helpers returning identical values/types on both
  backings.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import ExperimentSetup
from repro.core import metrics
from repro.core.reference import PreColumnarSliceSimulator
from repro.core.results import LazyCoflowResults, LazyFlowResults
from repro.schedulers import make_scheduler
from repro.traces.distributions import ConstantSize
from repro.traces.facebook import synthesize
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.units import mbps

POLICIES = ["fvdf", "sebf", "fair"]


def _make_sim(policy, cls, num_ports=6, bandwidth=mbps(100), slice_len=0.01):
    setup = ExperimentSetup(
        num_ports=num_ports, bandwidth=bandwidth, slice_len=slice_len
    )
    scheduler = make_scheduler(policy)
    base = setup.build_simulator(scheduler)
    return cls(
        base.fabric,
        scheduler,
        slice_len=setup.slice_len,
        cpu=base.cpu,
        compression=base.compression,
    )


def _pair(policy, **kw):
    """(columnar engine, pre-columnar engine) on identical fabrics."""
    from repro.core.simulator import SliceSimulator

    return (
        _make_sim(policy, SliceSimulator, **kw),
        _make_sim(policy, PreColumnarSliceSimulator, **kw),
    )


def _generated_coflows(seed=7, num_coflows=12, num_ports=6):
    cfg = WorkloadConfig(
        num_coflows=num_coflows, num_ports=num_ports,
        size_dist=ConstantSize(1e6), width=(1, 4), arrival_rate=4.0,
    )
    return generate_workload(cfg, np.random.default_rng(seed))


def _fb_coflows(seed=11, num_coflows=40, num_ports=6):
    return synthesize(
        np.random.default_rng(seed),
        num_coflows=num_coflows, num_ports=num_ports,
        arrival_rate=5.0, mean_reducer_mb=0.1,
    ).coflows


def assert_identical(a, b):
    """Bit-exact comparison of two SimulationResults (any backing)."""
    assert a.makespan == b.makespan
    assert a.decision_points == b.decision_points
    assert len(a.flow_results) == len(b.flow_results)
    assert len(a.coflow_results) == len(b.coflow_results)
    # Dataclass equality covers every field, CoflowResult recursively
    # including its member FlowResults.
    assert list(a.flow_results) == list(b.flow_results)
    assert list(a.coflow_results) == list(b.coflow_results)
    for name in ("fct_array", "size_array", "cct_array", "finish_array"):
        assert np.array_equal(getattr(a, name), getattr(b, name)), name
    for name in (
        "avg_fct", "avg_cct", "max_cct",
        "total_bytes_sent", "total_bytes_original", "traffic_reduction",
    ):
        assert getattr(a, name) == getattr(b, name), name


# --------------------------------------------------------- full-trace runs
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("workload", ["generated", "fb"])
def test_columnar_matches_precolumnar(policy, workload):
    coflows = (
        _generated_coflows() if workload == "generated" else _fb_coflows()
    )
    new, old = _pair(policy)
    new.submit_many(coflows)
    old.submit_many(coflows)
    res_new, res_old = new.run(), old.run()
    assert isinstance(res_new.flow_results, LazyFlowResults)
    assert isinstance(res_old.flow_results, list)
    assert_identical(res_new, res_old)


@pytest.mark.parametrize("policy", ["fvdf", "fair"])
def test_force_regroup_matches_delta_regroup(policy):
    """The incremental arrival/retire regroup deltas produce the same
    runs as rebuilding the segmentation at every decision."""
    from repro.core.simulator import SliceSimulator

    coflows = _fb_coflows(seed=29, num_coflows=25)
    delta = _make_sim(policy, SliceSimulator)
    full = _make_sim(policy, SliceSimulator)
    full.force_regroup = True
    delta.submit_many(coflows)
    full.submit_many(coflows)
    assert_identical(delta.run(), full.run())


# ------------------------------------------------ cancellation + horizons
@pytest.mark.parametrize("policy", ["fvdf", "fair"])
def test_cancellation_matches_precolumnar(policy):
    coflows = _generated_coflows(seed=19, num_coflows=10)
    new, old = _pair(policy)
    new.submit_many(coflows)
    old.submit_many(coflows)
    horizon = 0.5
    new.run(until=horizon)
    old.run(until=horizon)
    closed = {c.coflow_id for c in new.result().coflow_results}
    open_ids = [c.coflow_id for c in coflows if c.coflow_id not in closed]
    assert open_ids, "horizon too late: nothing left to cancel"
    target = open_ids[0]
    assert new.cancel_coflow(target) == old.cancel_coflow(target)
    res_new, res_old = new.run(), old.run()
    assert target in new.cancelled_coflows
    assert target not in {c.coflow_id for c in res_new.coflow_results}
    assert_identical(res_new, res_old)


def test_cancel_stamps_only_unset_finish_phys():
    """A cancelled coflow's already-retired flows keep their physical
    finish; only still-live flows get stamped with the abort instant."""
    new, old = _pair("fvdf")
    coflows = _generated_coflows(seed=21, num_coflows=8)
    new.submit_many(coflows)
    old.submit_many(coflows)
    new.run(until=0.5)
    old.run(until=0.5)
    closed = {c.coflow_id for c in new.result().coflow_results}
    target = next(
        c.coflow_id for c in coflows if c.coflow_id not in closed
    )
    new.cancel_coflow(target)
    old.cancel_coflow(target)
    res_new, res_old = new.run(), old.run()
    cancelled_new = [
        f for f in res_new.flow_results if f.coflow_id == target
    ]
    cancelled_old = [
        f for f in res_old.flow_results if f.coflow_id == target
    ]
    assert cancelled_new == cancelled_old
    for f in cancelled_new:
        assert f.finish_physical > 0.0


@pytest.mark.parametrize("policy", ["fvdf", "sebf"])
def test_until_horizon_resume_matches(policy):
    """Split runs (run(until) → submit more → run()) equal the
    pre-columnar engine run the same way, and intermediate snapshots
    stay frozen while the engine advances."""
    first = _generated_coflows(seed=5, num_coflows=8)
    horizon = 0.4
    late = _generated_coflows(seed=6, num_coflows=4)
    for c in late:
        c.arrival += horizon + 0.1
    new, old = _pair(policy)
    new.submit_many(first)
    old.submit_many(first)
    mid_new = new.run(until=horizon)
    mid_old = old.run(until=horizon)
    assert_identical(mid_new, mid_old)
    n_mid = len(mid_new.flow_results)
    mid_fct = mid_new.fct_array.copy()
    new.submit_many(late)
    old.submit_many(late)
    res_new, res_old = new.run(), old.run()
    assert_identical(res_new, res_old)
    # The mid-run snapshot is a frozen copy: resuming retired more
    # flows, but the earlier result still sees exactly what it saw.
    assert len(mid_new.flow_results) == n_mid
    assert np.array_equal(mid_new.fct_array, mid_fct)
    assert len(res_new.coflow_results) == len(first) + len(late)


# --------------------------------------------------- tied-boundary batches
@given(
    seed=st.integers(0, 2**16),
    num_coflows=st.integers(1, 6),
    max_width=st.integers(1, 4),
    policy=st.sampled_from(["fair", "fvdf"]),
)
@settings(max_examples=20, deadline=None)
def test_tied_boundary_retirement_batches(seed, num_coflows, max_width, policy):
    """Constant sizes + clumped arrivals retire many flows (often whole
    coflow groups) at the same slice boundary; the batched retirement
    must match the per-flow loop on every draw."""
    cfg = WorkloadConfig(
        num_coflows=num_coflows, num_ports=4,
        size_dist=ConstantSize(5e5), width=(1, max_width),
        arrival_rate=200.0,
    )
    coflows = generate_workload(cfg, np.random.default_rng(seed))
    new, old = _pair(policy, num_ports=4)
    new.submit_many(coflows)
    old.submit_many(coflows)
    assert_identical(new.run(), old.run())


# ----------------------------------------------------- lazy-seq contracts
def test_lazy_sequences_share_member_identity():
    new, _ = _pair("fvdf")
    new.submit_many(_fb_coflows(seed=13, num_coflows=15))
    res = new.run()
    flows = res.flow_results
    coflows = res.coflow_results
    assert isinstance(coflows, LazyCoflowResults)
    flat_ids = {id(f) for f in flows}
    for cr in coflows:
        assert len(cr.flow_results) == cr.width
        for f in cr.flow_results:
            # Same objects, not equal copies: members materialize
            # through the parent flat sequence.
            assert id(f) in flat_ids


def test_lazy_sequences_compare_like_lists():
    new, _ = _pair("sebf")
    new.submit_many(_generated_coflows(seed=3, num_coflows=6))
    res = new.run()
    flows = res.flow_results
    assert flows == list(flows)
    assert list(flows) == flows
    assert flows[:3] == list(flows)[:3]
    assert flows[-1] == list(flows)[-1]
    assert flows != list(flows)[:-1]
    with pytest.raises(IndexError):
        flows[len(flows)]


# -------------------------------------------------------- metrics helpers
def test_metrics_identical_on_both_backings():
    coflows = _fb_coflows(seed=17, num_coflows=30)
    new, old = _pair("fvdf")
    new.submit_many(coflows)
    old.submit_many(coflows)
    res_new, res_old = new.run(), old.run()
    edges = [1e4, 1e5, 1e6]
    bins_new = metrics.fct_by_size_bins(res_new.flow_results, edges)
    bins_old = metrics.fct_by_size_bins(res_old.flow_results, edges)
    assert isinstance(bins_new, dict)
    assert bins_new == bins_old
    assert list(bins_new) == list(bins_old)  # same label order too
    kept_new = metrics.filter_flows_by_size_percentile(
        res_new.flow_results, 0.9
    )
    kept_old = metrics.filter_flows_by_size_percentile(
        res_old.flow_results, 0.9
    )
    assert isinstance(kept_new, list)
    assert kept_new == kept_old
    assert metrics.avg_fct(res_new.flow_results) == metrics.avg_fct(
        res_old.flow_results
    )
    assert metrics.avg_cct(res_new.coflow_results) == metrics.avg_cct(
        res_old.coflow_results
    )
