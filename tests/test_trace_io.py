"""CSV workload serialisation."""

import io

import numpy as np
import pytest

from repro.core.coflow import Coflow
from repro.core.flow import Flow
from repro.errors import TraceFormatError
from repro.traces import read_csv_trace, write_csv_trace
from repro.traces.generator import WorkloadConfig, generate_workload
from repro.traces.spark import spark_trace


def roundtrip(coflows):
    buf = io.StringIO()
    write_csv_trace(coflows, buf)
    buf.seek(0)
    return read_csv_trace(buf)


class TestRoundTrip:
    def test_structure_preserved(self, rng):
        cfg = WorkloadConfig(num_coflows=10, num_ports=6, width=(1, 4),
                             arrival_rate=1.0, compressible_fraction=0.5)
        original = generate_workload(cfg, rng)
        back = roundtrip(original)
        assert len(back) == len(original)
        for a, b in zip(original, back):
            assert a.width == b.width
            assert a.arrival == b.arrival
            assert a.label == b.label
            for fa, fb in zip(a.flows, b.flows):
                assert (fa.src, fa.dst) == (fb.src, fb.dst)
                assert fa.size == fb.size
                assert fa.compressible == fb.compressible

    def test_ratio_override_preserved(self, rng):
        original = spark_trace(rng, num_jobs=4, num_ports=4)
        back = roundtrip(original)
        for a, b in zip(original, back):
            for fa, fb in zip(a.flows, b.flows):
                assert fa.ratio_override == pytest.approx(fb.ratio_override)

    def test_file_roundtrip(self, rng, tmp_path):
        cfg = WorkloadConfig(num_coflows=5, num_ports=4)
        original = generate_workload(cfg, rng)
        path = tmp_path / "trace.csv"
        write_csv_trace(original, path)
        back = read_csv_trace(path)
        assert sum(c.size for c in back) == pytest.approx(
            sum(c.size for c in original)
        )

    def test_replayable(self, rng):
        from repro.analysis import ExperimentSetup, run_policy

        cfg = WorkloadConfig(num_coflows=4, num_ports=4)
        back = roundtrip(generate_workload(cfg, rng))
        res = run_policy("sebf", back,
                         ExperimentSetup(num_ports=4, bandwidth=1e6))
        assert len(res.coflow_results) == 4


class TestErrors:
    def test_bad_header(self):
        with pytest.raises(TraceFormatError, match="bad CSV header"):
            read_csv_trace(io.StringIO("a,b,c\n1,2,3\n"))

    def test_malformed_row(self):
        text = (
            "coflow_id,label,arrival,src,dst,size,compressible,ratio_override\n"
            "1,x,0.0,zero,1,10.0,1,\n"
        )
        with pytest.raises(TraceFormatError, match="malformed"):
            read_csv_trace(io.StringIO(text))

    def test_inconsistent_arrivals(self):
        text = (
            "coflow_id,label,arrival,src,dst,size,compressible,ratio_override\n"
            "1,x,0.0,0,1,10.0,1,\n"
            "1,x,2.0,0,1,10.0,1,\n"
        )
        with pytest.raises(TraceFormatError, match="inconsistent"):
            read_csv_trace(io.StringIO(text))
